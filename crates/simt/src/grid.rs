//! Kernel launches: the device and its grid executor.
//!
//! [`Device::launch`] runs a kernel over a grid of blocks. Blocks are
//! independent in the classic sense (no intra-kernel barrier across
//! blocks — the CUDA guarantee the paper's `{local, global, local}`
//! structure is built around), so the simulator runs them in parallel
//! across host threads. Worker threads claim block ids from a shared
//! atomic counter (dynamic self-scheduling), which gives the one
//! forward-progress property single-pass chained scans need: a block
//! that has claimed a ticket has, by definition, already started, so a
//! later block spin-waiting on its published state only ever waits on
//! running (or finished) work. Per-block event counters are merged with
//! a reduction; no locks sit on the hot path.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::block::BlockCtx;
use crate::flight::{FlightEvent, FlightLog};
use crate::obs::{telemetry, ObsStats, Telemetry};
use crate::profile::DeviceProfile;
use crate::sched::{self, AdvCore, AdvSchedule, Schedule, ScheduleAborted, ADV_WORKERS};
use crate::stats::{BlockStats, LaunchRecord};
use crate::stream::{self, FairMutex, SessionKind, Stream, TimelineEntry, HOST_STREAM};

/// Below this grid size the thread fan-out costs more than it saves.
const PARALLEL_GRID_THRESHOLD: usize = 16;

/// One task of a [`Device::concurrent`] session: a closure handed its
/// own [`Stream`] to launch on.
pub type StreamTask<'env, R> = Box<dyn FnOnce(&Stream) -> R + Send + 'env>;

/// A simulated GPU: a profile plus the log of every kernel launched on it.
pub struct Device {
    profile: DeviceProfile,
    /// Launch log. Guarded by a fair FIFO ticket lock (MCS-style queued
    /// arbitration, [`FairMutex`]) rather than a plain mutex: with
    /// multiple streams submitting concurrently, record appends are
    /// granted strictly in arrival order, so no stream's submissions can
    /// barge past another's.
    records: FairMutex<Vec<LaunchRecord>>,
    scope: Mutex<String>,
    schedule: Schedule,
    /// Launches so far — mixed into the adversarial seed so each launch in
    /// a multi-kernel pipeline gets its own interleaving (deterministic:
    /// launch order on one device is program order).
    launch_counter: AtomicU64,
    /// Device-local stream indices handed out by [`Device::stream`] /
    /// [`Device::concurrent`] (deterministic: creation program order).
    stream_count: AtomicU32,
    /// Session id for streams created manually via [`Device::stream`];
    /// each [`Device::concurrent`] call gets its own fresh session.
    manual_session: u64,
    /// Modeled-concurrency timeline: one entry per recorded launch, from
    /// which [`Device::makespan`] computes overlapped execution time.
    timeline: FairMutex<Vec<TimelineEntry>>,
}

/// Lock a mutex, recovering the data if a previous holder panicked. The
/// scope string and launch log are plain data; a panic while appending
/// never leaves them in an invalid state worth propagating.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Device {
    /// A device that executes blocks in parallel across host cores.
    pub fn new(profile: DeviceProfile) -> Self {
        Self::with_schedule(profile, Schedule::Parallel)
    }

    /// A single-threaded device (bit-identical scheduling; used by tests
    /// that inspect intermediate buffers between phases).
    pub fn sequential(profile: DeviceProfile) -> Self {
        Self::with_schedule(profile, Schedule::Sequential)
    }

    /// A device that executes blocks under a seeded adversarial schedule
    /// (see [`crate::sched`]): one worker runs at a time and a policy
    /// chooses who runs next at every device-scope access. Deterministic
    /// given the schedule, hostile by construction.
    pub fn adversarial(profile: DeviceProfile, adv: AdvSchedule) -> Self {
        Self::with_schedule(profile, Schedule::Adversarial(adv))
    }

    /// A device with an explicit execution [`Schedule`].
    pub fn with_schedule(profile: DeviceProfile, schedule: Schedule) -> Self {
        Self {
            profile,
            records: FairMutex::new(Vec::new()),
            scope: Mutex::new(String::new()),
            schedule,
            launch_counter: AtomicU64::new(0),
            stream_count: AtomicU32::new(0),
            manual_session: stream::fresh_session_id(),
            timeline: FairMutex::new(Vec::new()),
        }
    }

    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The execution schedule this device runs blocks under.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Run `f` with `scope/` prepended to every launch label — lets a
    /// composite algorithm (e.g. a radix-sort pass built from multisplit
    /// kernels) keep its own stage names in the launch log.
    ///
    /// The previous scope is restored by an RAII guard, so a panicking
    /// closure (caught upstream, e.g. in a test harness) cannot poison
    /// the labels of every later launch on the device.
    pub fn with_scope<R>(&self, scope: &str, f: impl FnOnce() -> R) -> R {
        struct Restore<'a> {
            scope: &'a Mutex<String>,
            prev_len: usize,
        }
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                lock_unpoisoned(self.scope).truncate(self.prev_len);
            }
        }
        let prev_len = {
            let mut s = lock_unpoisoned(&self.scope);
            let prev_len = s.len();
            s.push_str(scope);
            s.push('/');
            prev_len
        };
        let _restore = Restore {
            scope: &self.scope,
            prev_len,
        };
        f()
    }

    /// Launch `kernel` over `num_blocks` blocks of `warps_per_block` warps.
    ///
    /// The label names the launch for per-stage reporting; by convention
    /// it is `"algorithm/stage"` (e.g. `"direct/pre-scan"`).
    ///
    /// Under [`crate::obs::Telemetry::PerBlock`] (see
    /// [`crate::obs::with_telemetry`], read from the **calling** host
    /// thread) the record additionally retains every block's own stats,
    /// indexed by block id. Summed stats are bit-identical whichever
    /// telemetry level or executor is active: per-block counts are
    /// schedule-independent and u64 addition commutes.
    ///
    /// **Zero-block contract**: a zero-block launch is a true no-op —
    /// nothing runs and nothing is appended to the launch log, so empty
    /// grids cannot inflate `total_seconds()` or stage roll-ups. The
    /// *returned* `LaunchRecord` is still fully formed (label carries the
    /// active scope prefix, stats/seconds are zero) so callers can treat
    /// every launch uniformly, but it exists only in the return value.
    pub fn launch<F>(
        &self,
        label: &str,
        num_blocks: usize,
        warps_per_block: usize,
        kernel: F,
    ) -> LaunchRecord
    where
        F: Fn(&BlockCtx) + Sync,
    {
        let label = format!("{}{}", lock_unpoisoned(&self.scope), label);
        let per_block_wanted = telemetry() == Telemetry::PerBlock;
        // Flight-recorder capacity is a thread-local of the *calling*
        // thread; read it once here so worker threads see the same value.
        let flight_cap = crate::flight::flight_capacity();
        if num_blocks == 0 {
            return LaunchRecord {
                label,
                blocks: 0,
                warps_per_block,
                stats: BlockStats::default(),
                obs: ObsStats::default(),
                per_block: per_block_wanted.then(Vec::new),
                flight: (flight_cap > 0).then(FlightLog::default),
                seconds: 0.0,
                stream: HOST_STREAM,
                stream_seq: 0,
            };
        }
        // Every launch is a race-detection epoch boundary: the id is pinned
        // per worker thread while it runs a block, so writes from earlier
        // launches (already ordered by the launch sync point) never read as
        // same-epoch hazards, while intra-launch cross-block traffic does.
        let epoch = crate::memory::fresh_epoch();
        let launch_ix = self.launch_counter.fetch_add(1, Ordering::Relaxed);
        // Stream attribution: when the calling thread is inside a stream
        // context, the launch ticks that stream's clock, registers its
        // epoch with the versioned-clock detector, and collects any event
        // edges observed since the stream's previous launch. Host-lane
        // launches stay exactly as before.
        let stream_ctx = stream::current_state();
        let (stream_ix, stream_seq, deps) = match stream::stamp_launch(epoch) {
            Some((ix, seq, deps)) => (ix, seq, deps),
            None => (HOST_STREAM, launch_ix as u32, Vec::new()),
        };
        if stream_ix != HOST_STREAM {
            sched::note_stream(stream_ix);
        }
        let run_block = |b: usize| -> (BlockStats, ObsStats, Vec<FlightEvent>, u64) {
            // Attribute every tracked memory access in this block to block
            // id `b` (the read-write hazard detector names reader/writer),
            // and carry the stream identity onto whatever worker thread
            // runs the block so cross-stream checks see the right reader.
            let _stream_guard = stream_ctx
                .as_ref()
                .map(|(s, k)| stream::enter_stream_kind(Arc::clone(s), *k));
            let _blk_guard = crate::memory::enter_block(b);
            let _epoch_pin = crate::memory::enter_epoch(epoch);
            let blk = BlockCtx::new(b, num_blocks, warps_per_block);
            blk.stats().obs.set_flight_capacity(flight_cap);
            kernel(&blk);
            let (bs, bo, (mut fl, dropped)) = blk.into_parts();
            // The ring doesn't know its block; stamp events at retirement.
            for e in &mut fl {
                e.block = b as u32;
            }
            (bs, bo, fl, dropped)
        };
        // Each worker accumulates locally (no locks on the hot path) and
        // keeps `(block_id, stats)` pairs when per-block telemetry is on;
        // the pairs are scattered into an id-indexed Vec after the join,
        // so the retained order is deterministic whatever the claim order.
        let parallel_wanted =
            self.schedule == Schedule::Parallel && num_blocks >= PARALLEL_GRID_THRESHOLD;
        let (stats, obs, per_block, flight) = if sched::in_adversarial_session() {
            // This thread is already an installed adversarial worker — a
            // stream task inside Device::concurrent. Spawning a nested
            // AdvCore here would deadlock (the nested workers would wait
            // on a token this thread holds), so the launch's blocks run
            // sequentially inline on this worker, yielding at the block
            // claim and at every device-scope op — which is exactly where
            // the session scheduler interleaves *other streams'* blocks.
            // Within the launch, block b always follows block b-1, so
            // every look-back predecessor is published before anyone
            // spins on it; cross-stream hostility comes from the session
            // policy, not intra-launch reordering.
            let mut acc = BlockStats::default();
            let mut obs = ObsStats::default();
            let mut per_block = per_block_wanted.then(|| Vec::with_capacity(num_blocks));
            let mut fl: Vec<FlightEvent> = Vec::new();
            let mut fl_dropped = 0u64;
            for b in 0..num_blocks {
                sched::yield_block_start();
                sched::note_block(b);
                let (bs, bo, f, d) = run_block(b);
                acc += bs;
                obs += bo;
                fl.extend(f);
                fl_dropped += d;
                if let Some(pb) = per_block.as_mut() {
                    pb.push(bs);
                }
            }
            (acc, obs, per_block, (fl, fl_dropped))
        } else if let Schedule::Adversarial(adv) = self.schedule {
            // Adversarial executor: dynamic self-scheduling like the
            // parallel path, but exactly one worker runs at a time and the
            // seeded policy picks who at every yield point. Each launch
            // mixes the launch index into the seed so a multi-kernel
            // pipeline explores a different interleaving per kernel while
            // staying deterministic (launch order is program order).
            let workers = num_blocks.min(ADV_WORKERS);
            let seed = adv.seed ^ launch_ix.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let core = Arc::new(AdvCore::new(adv.flavor, seed, workers, adv.spin_budget));
            let next = AtomicUsize::new(0);
            let next = &next;
            let run_block = &run_block;
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let core = Arc::clone(&core);
                        s.spawn(move || {
                            // On unwind (ours or a preempted neighbour's)
                            // retire this worker so nobody waits on it.
                            struct FinishGuard<'a> {
                                core: &'a AdvCore,
                                w: usize,
                            }
                            impl Drop for FinishGuard<'_> {
                                fn drop(&mut self) {
                                    self.core.finish(self.w, std::thread::panicking());
                                }
                            }
                            let _fin = FinishGuard { core: &core, w };
                            let _inst = sched::install(Arc::clone(&core), w);
                            let mut acc = BlockStats::default();
                            let mut obs = ObsStats::default();
                            let mut kept: Vec<(usize, BlockStats)> = Vec::new();
                            let mut fl: Vec<FlightEvent> = Vec::new();
                            let mut fl_dropped = 0u64;
                            loop {
                                sched::yield_block_start();
                                let b = next.fetch_add(1, Ordering::Relaxed);
                                if b >= num_blocks {
                                    break;
                                }
                                // Tell the watchdog which block this worker
                                // runs, for its wait-for diagnosis.
                                sched::note_block(b);
                                let (bs, bo, f, d) = run_block(b);
                                acc += bs;
                                obs += bo;
                                fl.extend(f);
                                fl_dropped += d;
                                if per_block_wanted {
                                    kept.push((b, bs));
                                }
                            }
                            (acc, obs, kept, fl, fl_dropped)
                        })
                    })
                    .collect();
                let mut acc = BlockStats::default();
                let mut obs = ObsStats::default();
                let mut per_block =
                    per_block_wanted.then(|| vec![BlockStats::default(); num_blocks]);
                let mut fl: Vec<FlightEvent> = Vec::new();
                let mut fl_dropped = 0u64;
                // Re-raise the *original* panic; workers torn down with the
                // `ScheduleAborted` marker were collateral, not the bug.
                let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
                for h in handles {
                    match h.join() {
                        Ok((s, o, kept, f, d)) => {
                            acc += s;
                            obs += o;
                            fl.extend(f);
                            fl_dropped += d;
                            if let Some(pb) = per_block.as_mut() {
                                for (b, bs) in kept {
                                    pb[b] = bs;
                                }
                            }
                        }
                        Err(payload) => {
                            if !payload.is::<ScheduleAborted>() && first_panic.is_none() {
                                first_panic = Some(payload);
                            }
                        }
                    }
                }
                if let Some(payload) = first_panic {
                    std::panic::resume_unwind(payload);
                }
                (acc, obs, per_block, (fl, fl_dropped))
            })
        } else if parallel_wanted {
            let workers = std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .min(num_blocks);
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut acc = BlockStats::default();
                            let mut obs = ObsStats::default();
                            let mut kept: Vec<(usize, BlockStats)> = Vec::new();
                            let mut fl: Vec<FlightEvent> = Vec::new();
                            let mut fl_dropped = 0u64;
                            loop {
                                let b = next.fetch_add(1, Ordering::Relaxed);
                                if b >= num_blocks {
                                    break;
                                }
                                let (bs, bo, f, d) = run_block(b);
                                acc += bs;
                                obs += bo;
                                fl.extend(f);
                                fl_dropped += d;
                                if per_block_wanted {
                                    kept.push((b, bs));
                                }
                            }
                            (acc, obs, kept, fl, fl_dropped)
                        })
                    })
                    .collect();
                let mut acc = BlockStats::default();
                let mut obs = ObsStats::default();
                let mut per_block =
                    per_block_wanted.then(|| vec![BlockStats::default(); num_blocks]);
                let mut fl: Vec<FlightEvent> = Vec::new();
                let mut fl_dropped = 0u64;
                for h in handles {
                    match h.join() {
                        Ok((s, o, kept, f, d)) => {
                            acc += s;
                            obs += o;
                            fl.extend(f);
                            fl_dropped += d;
                            if let Some(pb) = per_block.as_mut() {
                                for (b, bs) in kept {
                                    pb[b] = bs;
                                }
                            }
                        }
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                (acc, obs, per_block, (fl, fl_dropped))
            })
        } else {
            let mut acc = BlockStats::default();
            let mut obs = ObsStats::default();
            let mut per_block = per_block_wanted.then(|| Vec::with_capacity(num_blocks));
            let mut fl: Vec<FlightEvent> = Vec::new();
            let mut fl_dropped = 0u64;
            for b in 0..num_blocks {
                let (bs, bo, f, d) = run_block(b);
                acc += bs;
                obs += bo;
                fl.extend(f);
                fl_dropped += d;
                if let Some(pb) = per_block.as_mut() {
                    pb.push(bs);
                }
            }
            (acc, obs, per_block, (fl, fl_dropped))
        };
        // Merge every block's ring into one stream sorted by (block, seq):
        // deterministic whatever order workers retired blocks in.
        let (mut fl_events, fl_dropped) = flight;
        fl_events.sort_by_key(|e| (e.block, e.seq));
        let seconds = self.profile.estimate(&stats);
        let record = LaunchRecord {
            label,
            blocks: num_blocks,
            warps_per_block,
            stats,
            obs,
            per_block,
            flight: (flight_cap > 0).then_some(FlightLog {
                events: fl_events,
                dropped: fl_dropped,
            }),
            seconds,
            stream: stream_ix,
            stream_seq,
        };
        self.timeline.lock().push(TimelineEntry {
            stream: stream_ix,
            seq: stream_seq,
            seconds,
            occ: (num_blocks as f64 / self.profile.sm_count as f64).min(1.0),
            deps,
        });
        self.records.lock().push(record.clone());
        record
    }

    /// All launches so far, in submission order. With concurrent streams
    /// the order *across* streams is nondeterministic; sort or filter by
    /// each record's `(stream, stream_seq)` for deterministic views.
    pub fn records(&self) -> Vec<LaunchRecord> {
        self.records.lock().clone()
    }

    /// Drain the launch log.
    pub fn take_records(&self) -> Vec<LaunchRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Clear the launch log (and the concurrency timeline with it).
    pub fn reset(&self) {
        self.records.lock().clear();
        self.timeline.lock().clear();
    }

    /// Total estimated seconds over all recorded launches — the
    /// *serialized* baseline: one launch after another, no overlap.
    pub fn total_seconds(&self) -> f64 {
        self.records.lock().iter().map(|r| r.seconds).sum()
    }

    /// Total estimated seconds over launches whose label starts with `prefix`.
    pub fn seconds_with_prefix(&self, prefix: &str) -> f64 {
        self.records
            .lock()
            .iter()
            .filter(|r| r.label.starts_with(prefix))
            .map(|r| r.seconds)
            .sum()
    }

    /// Modeled end-to-end time with stream overlap: a deterministic
    /// discrete-event replay of the launch timeline under per-stream
    /// FIFO, event-wait edges, and occupancy packing (a launch occupies
    /// `min(1, blocks / sm_count)` of the device; concurrent launches
    /// share it up to capacity 1.0). Host-lane launches serialize in
    /// program order, so a device that never used streams has
    /// `makespan() == total_seconds()` exactly; with streams,
    /// `makespan() <= total_seconds()`, and the gap is the overlap win.
    pub fn makespan(&self) -> f64 {
        stream::simulate_makespan(&self.timeline.lock()).0
    }

    /// Device utilization over the overlapped timeline:
    /// `Σ duration·occupancy / makespan` (0.0 on an empty log).
    pub fn utilization(&self) -> f64 {
        let (makespan, busy) = stream::simulate_makespan(&self.timeline.lock());
        if makespan > 0.0 {
            busy / makespan
        } else {
            0.0
        }
    }

    /// Modeled finish time of every recorded launch on the overlapped
    /// timeline, keyed by `(stream index, per-stream launch number)` —
    /// the same simulation [`Device::makespan`] summarizes. Host-lane
    /// launches appear under [`crate::HOST_STREAM`] keyed by device
    /// launch index.
    pub fn completion_times(&self) -> Vec<(u32, u32, f64)> {
        let tl = self.timeline.lock();
        let ends = stream::simulate_end_times(&tl);
        tl.iter()
            .zip(ends)
            .map(|(e, t)| (e.stream, e.seq, t))
            .collect()
    }

    /// Create an independent launch queue on this device. Launches
    /// issued inside [`Stream::run`] are attributed to the stream and
    /// ordered FIFO against its other launches, but are *unordered*
    /// against other streams until an [`crate::stream::Event`] edge says
    /// otherwise — and the versioned-clock race detector holds the
    /// program to exactly that contract on tracked buffers.
    pub fn stream(&self) -> Stream {
        Stream::new(
            self.stream_count.fetch_add(1, Ordering::Relaxed),
            self.manual_session,
        )
    }

    /// Run `tasks` as one concurrency session: each task gets its own
    /// fresh [`Stream`] (device-local indices in task order) and every
    /// launch it issues lands on that stream. Returns each task's result
    /// in task order.
    ///
    /// The execution strategy follows the device [`Schedule`]:
    ///
    /// * [`Schedule::Sequential`] — tasks run one after another on the
    ///   calling thread (the *serialized reference order*: stream `i`'s
    ///   launches all precede stream `i+1`'s). Waiting on an event no
    ///   earlier task recorded panics rather than deadlocking.
    /// * [`Schedule::Parallel`] — one host thread per task; event waits
    ///   block on a condvar.
    /// * [`Schedule::Adversarial`] — all tasks become workers of a
    ///   single session-wide [`AdvCore`]: one task runs at a time and
    ///   the seeded policy picks who at every yield point (block claim,
    ///   ticket claim, device-scope op, look-back spin, event-wait
    ///   poll), interleaving *blocks of different streams' launches*
    ///   deterministically. The stall watchdog covers cross-stream
    ///   waits, naming streams in its dump.
    ///
    /// Nested sessions are not supported (a task must not call
    /// `concurrent` again); doing so panics.
    pub fn concurrent<'env, R: Send>(&self, tasks: Vec<StreamTask<'env, R>>) -> Vec<R> {
        assert!(
            !stream::in_stream_context(),
            "Device::concurrent does not nest: already inside a stream task"
        );
        let session = stream::fresh_session_id();
        let streams: Vec<Stream> = (0..tasks.len())
            .map(|_| Stream::new(self.stream_count.fetch_add(1, Ordering::Relaxed), session))
            .collect();
        match self.schedule {
            Schedule::Sequential => tasks
                .into_iter()
                .zip(&streams)
                .map(|(t, s)| {
                    let _ctx = stream::enter_stream_kind(
                        Arc::clone(&s.state),
                        Some(SessionKind::Sequential),
                    );
                    t(s)
                })
                .collect(),
            Schedule::Parallel => std::thread::scope(|sc| {
                let handles: Vec<_> = tasks
                    .into_iter()
                    .zip(&streams)
                    .map(|(t, s)| {
                        sc.spawn(move || {
                            let _ctx = stream::enter_stream_kind(
                                Arc::clone(&s.state),
                                Some(SessionKind::Parallel),
                            );
                            t(s)
                        })
                    })
                    .collect();
                let mut results = Vec::with_capacity(handles.len());
                let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
                for h in handles {
                    match h.join() {
                        Ok(r) => results.push(r),
                        Err(p) => {
                            if first_panic.is_none() {
                                first_panic = Some(p);
                            }
                        }
                    }
                }
                if let Some(p) = first_panic {
                    std::panic::resume_unwind(p);
                }
                results
            }),
            Schedule::Adversarial(adv) => {
                // One core for the whole session (workers = tasks); the
                // seed mixes the device's launch count so back-to-back
                // sessions explore different interleavings while staying
                // deterministic (launch order is program order).
                let seed = adv.seed
                    ^ self
                        .launch_counter
                        .load(Ordering::Relaxed)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let core = Arc::new(AdvCore::new(
                    adv.flavor,
                    seed,
                    streams.len(),
                    adv.spin_budget,
                ));
                std::thread::scope(|sc| {
                    let handles: Vec<_> = tasks
                        .into_iter()
                        .zip(&streams)
                        .enumerate()
                        .map(|(w, (t, s))| {
                            let core = Arc::clone(&core);
                            sc.spawn(move || {
                                struct FinishGuard<'a> {
                                    core: &'a AdvCore,
                                    w: usize,
                                }
                                impl Drop for FinishGuard<'_> {
                                    fn drop(&mut self) {
                                        self.core.finish(self.w, std::thread::panicking());
                                    }
                                }
                                let _fin = FinishGuard { core: &core, w };
                                let _inst = sched::install(Arc::clone(&core), w);
                                sched::note_stream(s.index());
                                let _ctx = stream::enter_stream_kind(
                                    Arc::clone(&s.state),
                                    Some(SessionKind::Adversarial),
                                );
                                t(s)
                            })
                        })
                        .collect();
                    let mut results = Vec::with_capacity(handles.len());
                    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
                    for h in handles {
                        match h.join() {
                            Ok(r) => results.push(r),
                            Err(payload) => {
                                if !payload.is::<ScheduleAborted>() && first_panic.is_none() {
                                    first_panic = Some(payload);
                                }
                            }
                        }
                    }
                    if let Some(p) = first_panic {
                        std::panic::resume_unwind(p);
                    }
                    results
                })
            }
        }
    }
}

/// Grid-size helper: blocks needed so that `grid_blocks * threads_per_block`
/// covers `n` elements with one element per thread.
pub fn blocks_for(n: usize, warps_per_block: usize) -> usize {
    n.div_ceil(warps_per_block * crate::lanes::WARP_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::{lanes_from_fn, splat, WARP_SIZE};
    use crate::memory::GlobalBuffer;
    use crate::profile::K40C;

    #[test]
    fn blocks_for_covers_input() {
        assert_eq!(blocks_for(0, 8), 0);
        assert_eq!(blocks_for(1, 8), 1);
        assert_eq!(blocks_for(256, 8), 1);
        assert_eq!(blocks_for(257, 8), 2);
        assert_eq!(blocks_for(1 << 20, 8), 4096);
    }

    /// A copy kernel: every thread moves one element.
    fn copy_kernel(
        dev: &Device,
        src: &GlobalBuffer<u32>,
        dst: &GlobalBuffer<u32>,
        n: usize,
        wpb: usize,
    ) {
        let blocks = blocks_for(n, wpb);
        dev.launch("copy", blocks, wpb, |blk| {
            for w in blk.warps() {
                let base = w.global_warp_id * WARP_SIZE;
                let idx = lanes_from_fn(|l| base + l);
                let mask = crate::lanes::lanes_from_fn(|l| base + l < n)
                    .iter()
                    .enumerate()
                    .fold(0u32, |m, (l, &a)| if a { m | 1 << l } else { m });
                let v = w.gather(src, idx, mask);
                w.scatter(dst, idx, v, mask);
            }
        });
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let n = 10_000;
        let data: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut outputs = Vec::new();
        let mut stats = Vec::new();
        for dev in [Device::new(K40C), Device::sequential(K40C)] {
            let src = GlobalBuffer::from_slice(&data);
            let dst = GlobalBuffer::<u32>::zeroed(n);
            copy_kernel(&dev, &src, &dst, n, 8);
            outputs.push(dst.to_vec());
            stats.push(dev.records()[0].stats);
        }
        assert_eq!(outputs[0], data);
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(stats[0], stats[1], "stats must be schedule-independent");
    }

    #[test]
    fn records_accumulate_and_reset() {
        let dev = Device::sequential(K40C);
        dev.launch("a/one", 1, 1, |_| {});
        dev.launch("a/two", 2, 2, |_| {});
        dev.launch("b/one", 1, 1, |_| {});
        assert_eq!(dev.records().len(), 3);
        assert!(dev.seconds_with_prefix("a/") > dev.seconds_with_prefix("b/"));
        assert!((dev.total_seconds() - dev.seconds_with_prefix("")).abs() < 1e-15);
        let drained = dev.take_records();
        assert_eq!(drained.len(), 3);
        assert!(dev.records().is_empty());
    }

    #[test]
    fn launch_reports_grid_shape() {
        let dev = Device::sequential(K40C);
        let rec = dev.launch("shape", 7, 4, |blk| {
            assert_eq!(blk.num_blocks, 7);
            assert_eq!(blk.warps_per_block, 4);
        });
        assert_eq!(rec.blocks, 7);
        assert_eq!(rec.warps_per_block, 4);
        assert_eq!(rec.label, "shape");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let dev = Device::sequential(K40C);
        dev.with_scope("radix", || {
            dev.launch("label", 1, 1, |_| {});
            dev.with_scope("pass0", || {
                dev.launch("scan", 1, 1, |_| {});
            });
        });
        dev.launch("plain", 1, 1, |_| {});
        let labels: Vec<String> = dev.records().iter().map(|r| r.label.clone()).collect();
        assert_eq!(labels, vec!["radix/label", "radix/pass0/scan", "plain"]);
        assert!(dev.seconds_with_prefix("radix/") > 0.0);
    }

    #[test]
    fn scope_restored_when_closure_panics() {
        let dev = Device::sequential(K40C);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.with_scope("doomed", || panic!("kernel bug"));
        }));
        assert!(caught.is_err());
        dev.launch("after", 1, 1, |_| {});
        assert_eq!(
            dev.records()[0].label,
            "after",
            "scope must unwind with the panic"
        );
    }

    #[test]
    fn zero_block_launch_is_a_noop() {
        let dev = Device::new(K40C);
        let rec = dev.launch("empty", 0, 8, |_| panic!("must not run"));
        assert_eq!(rec.stats, BlockStats::default());
        assert_eq!(rec.seconds, 0.0);
        assert!(
            dev.records().is_empty(),
            "no-op launches must not be recorded"
        );
        assert_eq!(dev.total_seconds(), 0.0);
    }

    #[test]
    fn scoped_zero_block_launch_is_a_noop_with_prefixed_label() {
        // The zero-block contract: the returned record carries the active
        // scope prefix, but the launch log stays untouched.
        let dev = Device::new(K40C);
        let rec = dev.with_scope("outer", || {
            dev.with_scope("inner", || {
                dev.launch("empty", 0, 8, |_| panic!("must not run"))
            })
        });
        assert_eq!(rec.label, "outer/inner/empty");
        assert_eq!(rec.stats, BlockStats::default());
        assert_eq!(rec.seconds, 0.0);
        assert!(
            dev.records().is_empty(),
            "zero-block launch must not record"
        );
        assert_eq!(dev.seconds_with_prefix("outer/"), 0.0);
    }

    #[test]
    fn per_block_telemetry_retains_indexed_stats() {
        use crate::obs::{with_telemetry, Telemetry};
        let n = 10_000;
        let data: Vec<u32> = (0..n as u32).collect();
        // Summary (default): no per-block vector.
        let dev = Device::new(K40C);
        let src = GlobalBuffer::from_slice(&data);
        let dst = GlobalBuffer::<u32>::zeroed(n);
        copy_kernel(&dev, &src, &dst, n, 8);
        let summary = dev.records()[0].clone();
        assert!(summary.per_block.is_none());
        // PerBlock on both executors: same summed stats as Summary, same
        // id-indexed per-block vectors, and the vector sums to the total.
        let mut per_block_runs = Vec::new();
        for dev in [Device::new(K40C), Device::sequential(K40C)] {
            let src = GlobalBuffer::from_slice(&data);
            let dst = GlobalBuffer::<u32>::zeroed(n);
            with_telemetry(Telemetry::PerBlock, || {
                copy_kernel(&dev, &src, &dst, n, 8);
            });
            per_block_runs.push(dev.records()[0].clone());
        }
        for rec in &per_block_runs {
            assert_eq!(rec.stats, summary.stats, "telemetry must not change sums");
            let pb = rec.per_block.as_ref().expect("per-block retained");
            assert_eq!(pb.len(), rec.blocks);
            let mut sum = BlockStats::default();
            for b in pb {
                sum += *b;
            }
            assert_eq!(sum, rec.stats, "per-block stats must sum to the total");
        }
        assert_eq!(
            per_block_runs[0].per_block, per_block_runs[1].per_block,
            "block-id-indexed stats must be schedule-independent"
        );
    }

    #[test]
    fn adversarial_flavors_agree_with_sequential() {
        use crate::sched::{AdvFlavor, AdvSchedule};
        let n = 10_000;
        let data: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let reference = {
            let dev = Device::sequential(K40C);
            let src = GlobalBuffer::from_slice(&data);
            let dst = GlobalBuffer::<u32>::zeroed(n);
            copy_kernel(&dev, &src, &dst, n, 8);
            (dst.to_vec(), dev.records()[0].stats)
        };
        for flavor in AdvFlavor::ALL {
            let dev = Device::adversarial(K40C, AdvSchedule::with_flavor(0xC0FFEE, flavor));
            assert!(matches!(
                dev.schedule(),
                crate::sched::Schedule::Adversarial(_)
            ));
            let src = GlobalBuffer::from_slice(&data);
            let dst = GlobalBuffer::<u32>::zeroed(n);
            copy_kernel(&dev, &src, &dst, n, 8);
            assert_eq!(dst.to_vec(), reference.0, "{flavor:?} output");
            assert_eq!(
                dev.records()[0].stats,
                reference.1,
                "{flavor:?} stats must be schedule-independent"
            );
        }
    }

    #[test]
    fn adversarial_runs_every_block_once_even_on_small_grids() {
        use crate::sched::AdvSchedule;
        // Below PARALLEL_GRID_THRESHOLD and above ADV_WORKERS: both
        // boundaries of the worker-multiplexing logic.
        for n_blocks in [1, 3, ADV_WORKERS, 64] {
            let dev = Device::adversarial(K40C, AdvSchedule::from_seed(7));
            let hits = GlobalBuffer::<u32>::zeroed(n_blocks);
            dev.launch("adv-dyn", n_blocks, 1, |blk| {
                for w in blk.warps() {
                    w.atomic_add(&hits, splat(blk.block_id), splat(1u32), 1);
                }
            });
            assert_eq!(hits.to_vec(), vec![1u32; n_blocks], "{n_blocks} blocks");
        }
    }

    #[test]
    fn adversarial_per_block_telemetry_is_id_indexed() {
        use crate::obs::{with_telemetry, Telemetry};
        use crate::sched::AdvSchedule;
        let n = 10_000;
        let data: Vec<u32> = (0..n as u32).collect();
        let mut runs = Vec::new();
        for dev in [
            Device::sequential(K40C),
            Device::adversarial(K40C, AdvSchedule::from_seed(41)),
        ] {
            let src = GlobalBuffer::from_slice(&data);
            let dst = GlobalBuffer::<u32>::zeroed(n);
            with_telemetry(Telemetry::PerBlock, || {
                copy_kernel(&dev, &src, &dst, n, 8);
            });
            runs.push(dev.records()[0].clone());
        }
        assert_eq!(
            runs[0].per_block, runs[1].per_block,
            "per-block stats must be schedule-independent"
        );
    }

    #[test]
    fn adversarial_panics_propagate_the_original_payload() {
        use crate::sched::AdvSchedule;
        let dev = Device::adversarial(K40C, AdvSchedule::from_seed(2));
        let counter = GlobalBuffer::<u32>::zeroed(1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.launch("doomed", 32, 1, |blk| {
                let w = blk.warp(0);
                let t = w.device_fetch_add(&counter, 0, 1);
                if t == 13 {
                    panic!("kernel bug in tile 13");
                }
                // Touch another yield point so preempted workers are
                // plausibly waiting when the panic lands.
                w.device_peek(&counter, 0);
            });
        }));
        let payload = caught.expect_err("launch must propagate the kernel panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("kernel bug in tile 13"),
            "must re-raise the original panic, not the abort marker (got {msg:?})"
        );
        // The device stays usable afterwards.
        dev.launch("after", 4, 1, |_| {});
        assert_eq!(dev.records().last().unwrap().label, "after");
    }

    #[test]
    fn parallel_grid_uses_dynamic_scheduling() {
        // Large enough to cross PARALLEL_GRID_THRESHOLD; every block must
        // run exactly once regardless of how workers interleave.
        let dev = Device::new(K40C);
        let n_blocks = 64;
        let hits = GlobalBuffer::<u32>::zeroed(n_blocks);
        dev.launch("dyn", n_blocks, 1, |blk| {
            for w in blk.warps() {
                w.atomic_add(&hits, splat(blk.block_id), splat(1u32), 1);
            }
        });
        assert_eq!(hits.to_vec(), vec![1u32; n_blocks]);
    }
}
