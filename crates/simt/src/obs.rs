//! Observability: per-block telemetry, derived launch reports, scope-tree
//! roll-ups and a JSON metrics sink.
//!
//! The simulator's whole argument is an *accounting* of where time goes —
//! but [`crate::Device::launch`] sums [`BlockStats`] across blocks before
//! recording, which hides load imbalance, and every report the bench
//! harness writes is plain text. This module adds the missing layers:
//!
//! * [`Telemetry`] — an RAII-scoped knob (like `with_pipeline` /
//!   `with_scan_strategy` in the crates above) that asks `launch` to
//!   retain per-block stats in [`crate::LaunchRecord::per_block`].
//! * [`ObsCells`] / [`ObsStats`] — an **uncounted side-channel** for
//!   introspection counters that must never feed the cost model. The
//!   rules: deterministic fields (look-back resolves) are asserted
//!   schedule-independent by tests; nondeterministic ones (walk depth,
//!   spin polls — both depend on thread interleaving) are exported for
//!   inspection but excluded from stats-equality checks, and none of them
//!   influence [`crate::DeviceProfile::estimate`].
//! * [`LaunchReport`] — occupancy-style metrics derived from per-block
//!   stats: block imbalance ratio, per-block sector histogram,
//!   critical-path vs. sum time estimates.
//! * [`scope_tree`] / [`ScopeNode`] — a hierarchical roll-up of a launch
//!   log keyed by the `/`-separated label segments that
//!   [`crate::Device::with_scope`] builds.
//! * [`MetricsSink`] — named JSON sections serialized with the hand-rolled
//!   [`crate::json`] module (no external deps, mirroring `trace.rs`).

use std::cell::Cell;
use std::ops::AddAssign;

use crate::flight::{EventKind, FlightEvent};
use crate::json::Json;
use crate::profile::DeviceProfile;
use crate::stats::{BlockStats, LaunchRecord};

/// How much detail [`crate::Device::launch`] retains per launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Telemetry {
    /// Summed stats only (default; zero extra allocation per launch).
    #[default]
    Summary,
    /// Additionally keep every block's [`BlockStats`], indexed by block
    /// id, in [`LaunchRecord::per_block`]. Summed stats are bit-identical
    /// either way (u64 addition is commutative and associative).
    PerBlock,
}

thread_local! {
    static TELEMETRY: Cell<Telemetry> = const { Cell::new(Telemetry::Summary) };
}

/// The telemetry level launches on this host thread currently record.
pub fn telemetry() -> Telemetry {
    TELEMETRY.with(Cell::get)
}

/// Run `f` with the telemetry knob set to `t` for this host thread,
/// restoring the previous value on the way out — **including on panic**
/// (an RAII drop guard, like `Device::with_scope`).
pub fn with_telemetry<R>(t: Telemetry, f: impl FnOnce() -> R) -> R {
    struct Restore(Telemetry);
    impl Drop for Restore {
        fn drop(&mut self) {
            TELEMETRY.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(TELEMETRY.with(|c| c.replace(t)));
    f()
}

/// Look-back depth histogram buckets: depths `0..15` each get a bucket,
/// anything deeper lands in the last one.
pub const LOOKBACK_DEPTH_BUCKETS: usize = 16;

/// Interior-mutable introspection counters, bundled inside
/// [`crate::StatCells`] so every [`crate::WarpCtx`] can reach them without
/// new plumbing (`w.obs()`).
///
/// This is the **uncounted channel**: nothing here is priced by
/// [`DeviceProfile::estimate`] and nothing here may feed back into
/// [`BlockStats`]. Deterministic fields (`lookback_resolves`) are
/// schedule-independent; the depth histogram and spin polls depend on
/// thread interleaving and are excluded from stats-equality assertions.
#[derive(Debug, Default)]
pub struct ObsCells {
    lookback_resolves: Cell<u64>,
    lookback_depth_total: Cell<u64>,
    lookback_depth_hist: [Cell<u64>; LOOKBACK_DEPTH_BUCKETS],
    spin_polls: Cell<u64>,
    // Flight-recorder ring (see `crate::flight`): bounded, uncounted,
    // armed per block by `Device::launch` from the thread-local capacity.
    flight_cap: Cell<usize>,
    flight_seq: Cell<u32>,
    flight_dropped: Cell<u64>,
    flight_events: std::cell::RefCell<Vec<FlightEvent>>,
}

impl ObsCells {
    /// Record one resolved look-back that met an `INCLUSIVE` word after
    /// walking back `depth` predecessor tiles (0 for tile 0, which
    /// publishes directly). Multi-row state records wider than a warp
    /// resolve once per warp-sized row group, so a complete kernel records
    /// `tiles * row_groups` resolves — callers asserting the
    /// resolves-per-tile invariant must scale it by the record's group
    /// count.
    pub fn record_lookback(&self, depth: u64) {
        self.lookback_resolves.set(self.lookback_resolves.get() + 1);
        self.lookback_depth_total
            .set(self.lookback_depth_total.get() + depth);
        let bucket = (depth as usize).min(LOOKBACK_DEPTH_BUCKETS - 1);
        let cell = &self.lookback_depth_hist[bucket];
        cell.set(cell.get() + 1);
    }

    /// Record `n` spin-poll iterations of an uncounted `device_peek` wait.
    pub fn record_spins(&self, n: u64) {
        self.spin_polls.set(self.spin_polls.get() + n);
    }

    /// Arm (or, with `cap == 0`, disarm) this block's flight ring.
    /// `Device::launch` calls this with the host thread's
    /// [`crate::flight::flight_capacity`] before the kernel runs.
    pub fn set_flight_capacity(&self, cap: usize) {
        self.flight_cap.set(cap);
    }

    /// Append a flight event to the ring. No-op when disarmed; when the
    /// ring is full the event is dropped and counted (truncation is
    /// flagged, never silent) while `seq` still advances, so a gap-free
    /// sequence certifies completeness. The `block` field is stamped
    /// later by `Device::launch` — emitters pass only the ticket and
    /// kind-specific payloads.
    pub fn flight_emit(&self, kind: EventKind, ticket: u32, a: u32, b: u32) {
        let cap = self.flight_cap.get();
        if cap == 0 {
            return;
        }
        let seq = self.flight_seq.get();
        self.flight_seq.set(seq.wrapping_add(1));
        let mut events = self.flight_events.borrow_mut();
        if events.len() < cap {
            events.push(FlightEvent {
                kind,
                block: 0,
                ticket,
                a,
                b,
                seq,
            });
        } else {
            self.flight_dropped.set(self.flight_dropped.get() + 1);
        }
    }

    /// Drain the ring when the block retires: `(events, dropped)`.
    pub(crate) fn take_flight(&self) -> (Vec<FlightEvent>, u64) {
        (
            std::mem::take(&mut *self.flight_events.borrow_mut()),
            self.flight_dropped.get(),
        )
    }

    /// Fold the cells into a plain value (when the block retires).
    pub fn snapshot(&self) -> ObsStats {
        ObsStats {
            lookback_resolves: self.lookback_resolves.get(),
            lookback_depth_total: self.lookback_depth_total.get(),
            lookback_depth_hist: std::array::from_fn(|i| self.lookback_depth_hist[i].get()),
            spin_polls: self.spin_polls.get(),
        }
    }
}

/// Introspection counters for one block (or, summed, one launch).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ObsStats {
    /// Look-backs resolved (one per [`ObsCells::record_lookback`] call).
    /// **Deterministic**: one per tile per warp-sized row group of its
    /// state record — `tiles` for the scalar scan, `tiles * ceil(rows/32)`
    /// for multi-row records — regardless of schedule.
    pub lookback_resolves: u64,
    /// Sum of walk depths. **Nondeterministic**: under `Device::sequential`
    /// every predecessor has finished, so every walk stops after one hop;
    /// under the parallel executor the depth depends on timing.
    pub lookback_depth_total: u64,
    /// Walk-depth histogram (`depth.min(15)`-indexed). Per-bucket counts
    /// are nondeterministic, but the **total across buckets equals
    /// `lookback_resolves`** and is therefore schedule-independent.
    pub lookback_depth_hist: [u64; LOOKBACK_DEPTH_BUCKETS],
    /// Uncounted `device_peek` poll iterations. **Nondeterministic.**
    pub spin_polls: u64,
}

impl AddAssign for ObsStats {
    fn add_assign(&mut self, o: Self) {
        self.lookback_resolves += o.lookback_resolves;
        self.lookback_depth_total += o.lookback_depth_total;
        for (a, b) in self
            .lookback_depth_hist
            .iter_mut()
            .zip(o.lookback_depth_hist)
        {
            *a += b;
        }
        self.spin_polls += o.spin_polls;
    }
}

impl ObsStats {
    /// Sum of the depth-histogram buckets; always equals
    /// [`lookback_resolves`](Self::lookback_resolves) — the
    /// schedule-independent invariant tests assert.
    pub fn depth_hist_total(&self) -> u64 {
        self.lookback_depth_hist.iter().sum()
    }

    /// Mean look-back walk depth (0 when nothing resolved).
    pub fn mean_depth(&self) -> f64 {
        if self.lookback_resolves == 0 {
            0.0
        } else {
            self.lookback_depth_total as f64 / self.lookback_resolves as f64
        }
    }
}

/// Occupancy-style metrics derived from a launch's per-block stats.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    pub label: String,
    pub blocks: usize,
    /// The recorded estimate: profile applied to the *summed* stats.
    pub sum_seconds: f64,
    /// Lower bound assuming unlimited parallelism: launch overhead plus
    /// the slowest single block's modeled time.
    pub critical_path_seconds: f64,
    /// Slowest block's modeled time (overhead excluded).
    pub max_block_seconds: f64,
    /// Mean per-block modeled time (overhead excluded).
    pub mean_block_seconds: f64,
    /// Block imbalance ratio `max / mean` (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Per-block sector histogram over log2 buckets: `(bucket, blocks)`
    /// where bucket `0` holds blocks that touched no sectors and bucket
    /// `k >= 1` holds blocks with `sectors in [2^(k-1), 2^k)`. Only
    /// non-empty buckets are listed.
    pub sector_hist: Vec<(u32, u64)>,
}

/// Derive a [`LaunchReport`] from a record that carried
/// [`Telemetry::PerBlock`]; `None` if per-block stats were not retained.
pub fn launch_report(rec: &LaunchRecord, profile: &DeviceProfile) -> Option<LaunchReport> {
    let per_block = rec.per_block.as_ref()?;
    if per_block.is_empty() {
        return None;
    }
    let overhead = profile.launch_overhead_us * 1e-6;
    // Per-block modeled time: the profile prices a whole launch, so strip
    // the fixed launch overhead to isolate the block's own work.
    let times: Vec<f64> = per_block
        .iter()
        .map(|b| (profile.estimate(b) - overhead).max(0.0))
        .collect();
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let mut hist = std::collections::BTreeMap::new();
    for b in per_block {
        let bucket = if b.sectors == 0 {
            0u32
        } else {
            64 - (b.sectors.leading_zeros())
        };
        *hist.entry(bucket).or_insert(0u64) += 1;
    }
    Some(LaunchReport {
        label: rec.label.clone(),
        blocks: per_block.len(),
        sum_seconds: rec.seconds,
        critical_path_seconds: overhead + max,
        max_block_seconds: max,
        mean_block_seconds: mean,
        imbalance: if mean > 0.0 { max / mean } else { 1.0 },
        sector_hist: hist.into_iter().collect(),
    })
}

impl LaunchReport {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("blocks".into(), Json::int(self.blocks as u64)),
            ("sum_seconds".into(), Json::Num(self.sum_seconds)),
            (
                "critical_path_seconds".into(),
                Json::Num(self.critical_path_seconds),
            ),
            (
                "max_block_seconds".into(),
                Json::Num(self.max_block_seconds),
            ),
            (
                "mean_block_seconds".into(),
                Json::Num(self.mean_block_seconds),
            ),
            ("imbalance".into(), Json::Num(self.imbalance)),
            (
                "sector_hist_log2".into(),
                Json::Arr(
                    self.sector_hist
                        .iter()
                        .map(|&(bucket, count)| {
                            Json::Obj(vec![
                                ("bucket".into(), Json::int(bucket as u64)),
                                ("blocks".into(), Json::int(count)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One node of the hierarchical scope-tree roll-up. Aggregates cover the
/// node's own records *and* everything below it.
#[derive(Debug, Default, Clone)]
pub struct ScopeNode {
    /// Label segment (empty for the root).
    pub name: String,
    /// Launches whose label ends at or passes through this node.
    pub launches: usize,
    /// Total blocks launched at or below this node.
    pub blocks: u64,
    /// Modeled seconds summed at or below this node.
    pub seconds: f64,
    /// Event counts summed at or below this node.
    pub stats: BlockStats,
    /// Introspection counters summed at or below this node.
    pub obs: ObsStats,
    /// Child scopes in first-appearance order.
    pub children: Vec<ScopeNode>,
}

impl ScopeNode {
    fn child_mut(&mut self, name: &str) -> &mut ScopeNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(ScopeNode {
            name: name.to_string(),
            ..ScopeNode::default()
        });
        self.children.last_mut().unwrap()
    }

    fn absorb(&mut self, rec: &LaunchRecord) {
        self.launches += 1;
        self.blocks += rec.blocks as u64;
        self.seconds += rec.seconds;
        self.stats += rec.stats;
        self.obs += rec.obs;
    }

    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("launches".into(), Json::int(self.launches as u64)),
            ("blocks".into(), Json::int(self.blocks)),
            ("seconds".into(), Json::Num(self.seconds)),
            ("sectors".into(), Json::int(self.stats.sectors)),
            ("dram_bytes".into(), Json::int(self.stats.dram_bytes())),
            ("wasted_bytes".into(), Json::int(self.stats.wasted_bytes())),
            ("replays".into(), Json::int(self.stats.replays)),
            ("stats".into(), stats_json(&self.stats)),
        ];
        if self.obs.lookback_resolves > 0 {
            fields.push(("obs".into(), obs_json(&self.obs)));
        }
        if !self.children.is_empty() {
            fields.push((
                "children".into(),
                Json::Arr(self.children.iter().map(ScopeNode::to_json).collect()),
            ));
        }
        Json::Obj(fields)
    }

    /// Indented text rendering (for the `paper profile` terminal report).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let name = if self.name.is_empty() {
            "(all)"
        } else {
            &self.name
        };
        out.push_str(&format!(
            "{:indent$}{name:<width$} {:>10.3} ms {:>14} sectors {:>12} waste B {:>10} replays\n",
            "",
            self.seconds * 1e3,
            self.stats.sectors,
            self.stats.wasted_bytes(),
            self.stats.replays,
            indent = depth * 2,
            width = 28usize.saturating_sub(depth * 2),
        ));
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// Build the scope-tree roll-up of a launch log: labels split on `/`
/// (the separator [`crate::Device::with_scope`] inserts), aggregates
/// rolled up on every node along each path. The returned root spans the
/// whole log.
pub fn scope_tree(records: &[LaunchRecord]) -> ScopeNode {
    let mut root = ScopeNode::default();
    for rec in records {
        root.absorb(rec);
        let mut node = &mut root;
        for seg in rec.label.split('/') {
            node = node.child_mut(seg);
            node.absorb(rec);
        }
    }
    root
}

/// Every [`BlockStats`] field as a JSON object (all 12 counters — the
/// Chrome trace exporter and the metrics sink share this so neither can
/// silently drop one again).
pub fn stats_json(s: &BlockStats) -> Json {
    Json::Obj(vec![
        ("sectors".into(), Json::int(s.sectors)),
        ("useful_bytes".into(), Json::int(s.useful_bytes)),
        ("global_requests".into(), Json::int(s.global_requests)),
        ("replays".into(), Json::int(s.replays)),
        ("atomic_ops".into(), Json::int(s.atomic_ops)),
        ("atomic_conflicts".into(), Json::int(s.atomic_conflicts)),
        ("smem_ops".into(), Json::int(s.smem_ops)),
        (
            "smem_bank_conflicts".into(),
            Json::int(s.smem_bank_conflicts),
        ),
        ("intrinsics".into(), Json::int(s.intrinsics)),
        ("lane_ops".into(), Json::int(s.lane_ops)),
        ("barriers".into(), Json::int(s.barriers)),
        ("divergent_iters".into(), Json::int(s.divergent_iters)),
    ])
}

/// [`ObsStats`] as JSON. The histogram is emitted in full so chain-length
/// distributions are visible; consumers must treat `depth`/`spin` fields
/// as nondeterministic (see the field docs).
pub fn obs_json(o: &ObsStats) -> Json {
    Json::Obj(vec![
        ("lookback_resolves".into(), Json::int(o.lookback_resolves)),
        (
            "lookback_depth_total".into(),
            Json::int(o.lookback_depth_total),
        ),
        ("lookback_mean_depth".into(), Json::Num(o.mean_depth())),
        (
            "lookback_depth_hist".into(),
            Json::Arr(
                o.lookback_depth_hist
                    .iter()
                    .map(|&c| Json::int(c))
                    .collect(),
            ),
        ),
        ("spin_polls".into(), Json::int(o.spin_polls)),
    ])
}

/// One launch record as JSON (per-block stats included when retained).
pub fn record_json(rec: &LaunchRecord) -> Json {
    let mut fields = vec![
        ("label".into(), Json::Str(rec.label.clone())),
        ("blocks".into(), Json::int(rec.blocks as u64)),
        (
            "warps_per_block".into(),
            Json::int(rec.warps_per_block as u64),
        ),
        ("seconds".into(), Json::Num(rec.seconds)),
        ("stats".into(), stats_json(&rec.stats)),
    ];
    if rec.obs != ObsStats::default() {
        fields.push(("obs".into(), obs_json(&rec.obs)));
    }
    if let Some(per_block) = &rec.per_block {
        fields.push((
            "per_block".into(),
            Json::Arr(per_block.iter().map(stats_json).collect()),
        ));
    }
    // Flight log: summary only — full event streams belong in the chrome
    // trace, not in every JSON export.
    if let Some(flight) = &rec.flight {
        fields.push((
            "flight".into(),
            Json::Obj(vec![
                ("events".into(), Json::int(flight.events.len() as u64)),
                ("dropped".into(), Json::int(flight.dropped)),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// A whole launch log as a JSON array.
pub fn records_json(records: &[LaunchRecord]) -> Json {
    Json::Arr(records.iter().map(record_json).collect())
}

/// Named JSON sections accumulated over a run and written as one document
/// — the structured counterpart of the `.txt` reports in `bench_results/`.
#[derive(Debug, Default)]
pub struct MetricsSink {
    sections: Vec<(String, Json)>,
}

impl MetricsSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Append a named section (names may repeat; order is preserved).
    pub fn push(&mut self, name: &str, value: Json) {
        self.sections.push((name.to_string(), value));
    }

    /// Append a launch log as a section: the raw records plus their
    /// scope-tree roll-up.
    pub fn push_records(&mut self, name: &str, records: &[LaunchRecord]) {
        self.push(
            name,
            Json::Obj(vec![
                ("launches".into(), records_json(records)),
                ("scope_tree".into(), scope_tree(records).to_json()),
            ]),
        );
    }

    /// The whole sink as one JSON object (`{"sections": [{name, data}]}` —
    /// an array, not a map, because section names may repeat).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "sections".into(),
            Json::Arr(
                self.sections
                    .iter()
                    .map(|(name, data)| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(name.clone())),
                            ("data".into(), data.clone()),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// Pretty-print the sink to a file.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json().pretty() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::K40C;

    fn rec(label: &str, sectors: u64, seconds: f64) -> LaunchRecord {
        LaunchRecord {
            label: label.into(),
            blocks: 2,
            warps_per_block: 8,
            stats: BlockStats {
                sectors,
                useful_bytes: sectors * 16,
                ..Default::default()
            },
            obs: ObsStats::default(),
            per_block: None,
            flight: None,
            seconds,
            stream: crate::stream::HOST_STREAM,
            stream_seq: 0,
        }
    }

    #[test]
    fn telemetry_knob_is_scoped_and_panic_safe() {
        assert_eq!(telemetry(), Telemetry::Summary);
        with_telemetry(Telemetry::PerBlock, || {
            assert_eq!(telemetry(), Telemetry::PerBlock);
            with_telemetry(Telemetry::Summary, || {
                assert_eq!(telemetry(), Telemetry::Summary);
            });
            assert_eq!(telemetry(), Telemetry::PerBlock);
        });
        assert_eq!(telemetry(), Telemetry::Summary);
        let caught =
            std::panic::catch_unwind(|| with_telemetry(Telemetry::PerBlock, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(telemetry(), Telemetry::Summary, "knob must unwind");
    }

    #[test]
    fn obs_cells_histogram_and_invariant() {
        let cells = ObsCells::default();
        for depth in [0u64, 1, 1, 3, 40] {
            cells.record_lookback(depth);
        }
        cells.record_spins(7);
        let o = cells.snapshot();
        assert_eq!(o.lookback_resolves, 5);
        assert_eq!(o.lookback_depth_total, 45);
        assert_eq!(o.lookback_depth_hist[0], 1);
        assert_eq!(o.lookback_depth_hist[1], 2);
        assert_eq!(o.lookback_depth_hist[3], 1);
        assert_eq!(
            o.lookback_depth_hist[LOOKBACK_DEPTH_BUCKETS - 1],
            1,
            "deep walks clamp"
        );
        assert_eq!(o.depth_hist_total(), o.lookback_resolves);
        assert_eq!(o.spin_polls, 7);
        assert!((o.mean_depth() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn obs_stats_add_assign_sums_everything() {
        let mut a = ObsStats::default();
        let cells = ObsCells::default();
        cells.record_lookback(2);
        cells.record_spins(5);
        let b = cells.snapshot();
        a += b;
        a += b;
        assert_eq!(a.lookback_resolves, 2);
        assert_eq!(a.lookback_depth_total, 4);
        assert_eq!(a.lookback_depth_hist[2], 2);
        assert_eq!(a.spin_polls, 10);
    }

    #[test]
    fn scope_tree_rolls_up_along_paths() {
        let recs = vec![
            rec("fused/pre-scan", 100, 1e-6),
            rec("fused/sweep", 300, 3e-6),
            rec("scan/scan-chained", 50, 2e-6),
        ];
        let root = scope_tree(&recs);
        assert_eq!(root.launches, 3);
        assert_eq!(root.stats.sectors, 450);
        assert!((root.seconds - 6e-6).abs() < 1e-18);
        let fused = root.children.iter().find(|c| c.name == "fused").unwrap();
        assert_eq!(fused.launches, 2);
        assert_eq!(fused.stats.sectors, 400);
        assert_eq!(fused.children.len(), 2);
        assert_eq!(fused.children[0].name, "pre-scan");
        assert_eq!(fused.children[0].stats.sectors, 100);
        let text = root.render_text();
        assert!(text.contains("fused"));
        assert!(text.contains("sweep"));
        let json = root.to_json().pretty();
        assert!(Json::parse(&json).is_ok(), "scope tree must be valid JSON");
    }

    #[test]
    fn launch_report_derives_imbalance_and_histogram() {
        let mut r = rec("k", 6, 1e-5);
        let heavy = BlockStats {
            sectors: 4,
            useful_bytes: 128,
            ..Default::default()
        };
        let light = BlockStats {
            sectors: 2,
            useful_bytes: 64,
            ..Default::default()
        };
        let idle = BlockStats::default();
        r.per_block = Some(vec![heavy, light, idle]);
        let report = launch_report(&r, &K40C).expect("per-block stats present");
        assert_eq!(report.blocks, 3);
        assert!(report.imbalance > 1.0, "skewed blocks => imbalance > 1");
        assert!(report.critical_path_seconds <= report.sum_seconds + 9e-6);
        assert!(report.max_block_seconds >= report.mean_block_seconds);
        // heavy: bucket 3 ([4,8)); light: bucket 2 ([2,4)); idle: bucket 0.
        assert_eq!(report.sector_hist, vec![(0, 1), (2, 1), (3, 1)]);
        assert!(Json::parse(&report.to_json().render()).is_ok());
        assert!(launch_report(&rec("no-pb", 1, 1e-6), &K40C).is_none());
    }

    #[test]
    fn metrics_sink_serializes_valid_json() {
        let mut sink = MetricsSink::new();
        assert!(sink.is_empty());
        sink.push("meta", Json::Obj(vec![("n".into(), Json::int(65536))]));
        sink.push_records("run \"quoted\\label\"", &[rec("a/b", 10, 1e-6)]);
        let text = sink.to_json().pretty();
        let parsed = Json::parse(&text).expect("sink output must parse");
        let sections = parsed.get("sections").unwrap().as_arr().unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(
            sections[1].get("name").unwrap().as_str(),
            Some("run \"quoted\\label\"")
        );
    }
}
