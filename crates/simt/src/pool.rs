//! Reusable device-buffer arena for cheap kernel re-launches.
//!
//! A serving workload runs thousands of small launches back to back; on
//! real hardware the `cudaMalloc`/`cudaFree` pair around each one costs
//! more than the kernels, which is why production servers keep a stream
//! arena. [`BufferPool`] is that arena for the simulator: buffers are
//! checked out by length, rounded up to a power-of-two size class, and
//! returned to a per-class shelf when the [`PooledBuffer`] guard drops —
//! the next `acquire` of the class reuses the same allocation instead of
//! creating a new [`GlobalBuffer`].
//!
//! ### `read_sectors` accounting across reuse
//!
//! Per-buffer [`GlobalBuffer::read_sectors`] is a **lifetime** counter
//! ("the key buffer was read exactly twice" claims divide by it), and a
//! pooled buffer's lifetime now spans many launches. The pool therefore
//! must never recreate or reset a shelved buffer — recreating one would
//! silently zero the counter mid-measurement, which is exactly the bug
//! surface this module's regression test pins down. Consumers that want
//! per-launch attribution snapshot the counter before the launch and
//! subtract ([`read_sectors`](GlobalBuffer::read_sectors) deltas are
//! schedule-independent because only counted read paths bump it).
//!
//! ### Race-detector interaction
//!
//! A tracked pool ([`BufferPool::new_tracked`]) hands out buffers with
//! the write-race detector enabled. Reuse is safe without clearing marks:
//! every `Device::launch` opens a globally fresh epoch, so marks left by
//! a previous checkout can never collide with the next launch's writes.
//! Host-side zeroing ([`acquire_zeroed`](BufferPool::acquire_zeroed))
//! goes through the mark-free `set` path for the same reason.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::memory::{GlobalBuffer, Scalar};

/// A shelf of idle buffers per power-of-two size class.
struct Shelves<T: Scalar> {
    /// `(capacity, idle buffers)`, sorted by capacity (few classes, so a
    /// linear scan beats hashing and keeps iteration deterministic).
    classes: Vec<(usize, Vec<GlobalBuffer<T>>)>,
}

/// A reusable arena of [`GlobalBuffer`]s (see the module docs).
pub struct BufferPool<T: Scalar = u32> {
    shelves: Mutex<Shelves<T>>,
    /// Hand out tracked (race-detected) buffers.
    tracked: bool,
    /// Fresh `GlobalBuffer` allocations performed by this pool.
    allocs: AtomicU64,
    /// Checkouts served by reusing a shelved buffer.
    reuses: AtomicU64,
}

impl<T: Scalar> BufferPool<T> {
    /// An empty pool of untracked buffers.
    pub fn new() -> Self {
        Self::with_tracking(false)
    }

    /// An empty pool whose buffers have the write-race detector enabled —
    /// for output buffers, matching the `tracked()` convention of the
    /// fused pipelines.
    pub fn new_tracked() -> Self {
        Self::with_tracking(true)
    }

    fn with_tracking(tracked: bool) -> Self {
        Self {
            shelves: Mutex::new(Shelves {
                classes: Vec::new(),
            }),
            tracked,
            allocs: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        }
    }

    /// Size class a request of `len` elements is served from.
    pub fn size_class(len: usize) -> usize {
        len.max(1).next_power_of_two()
    }

    /// Check out a buffer of at least `len` elements. Contents are
    /// whatever the previous checkout left behind (like a freshly
    /// `cudaMalloc`ed region); use
    /// [`acquire_zeroed`](Self::acquire_zeroed) when that matters. The
    /// buffer's `len()` is the size class, not `len` — kernels take an
    /// explicit `n`, so spare capacity is inert.
    pub fn acquire(&self, len: usize) -> PooledBuffer<'_, T> {
        let cap = Self::size_class(len);
        let reused = {
            let mut g = self.shelves.lock().unwrap_or_else(|e| e.into_inner());
            g.classes
                .iter_mut()
                .find(|(c, _)| *c == cap)
                .and_then(|(_, idle)| idle.pop())
        };
        let buf = match reused {
            Some(b) => {
                // Reuse NEVER recreates the buffer: its lifetime
                // `read_sectors` counter keeps accumulating.
                self.reuses.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                let b = GlobalBuffer::<T>::zeroed(cap);
                if self.tracked {
                    b.tracked()
                } else {
                    b
                }
            }
        };
        PooledBuffer {
            pool: self,
            buf: Some(buf),
        }
    }

    /// [`acquire`](Self::acquire) plus a host-side clear of the whole
    /// buffer (mark-free stores, so a tracked buffer stays reusable).
    pub fn acquire_zeroed(&self, len: usize) -> PooledBuffer<'_, T> {
        let b = self.acquire(len);
        for i in 0..b.len() {
            b.set(i, T::default());
        }
        b
    }

    /// Fresh allocations this pool has performed.
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Checkouts served without allocating (shelf hits).
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Buffers currently idle on the shelves.
    pub fn idle(&self) -> usize {
        let g = self.shelves.lock().unwrap_or_else(|e| e.into_inner());
        g.classes.iter().map(|(_, v)| v.len()).sum()
    }

    fn release(&self, buf: GlobalBuffer<T>) {
        let cap = buf.len();
        debug_assert_eq!(cap, Self::size_class(cap), "pooled buffers are class-sized");
        let mut g = self.shelves.lock().unwrap_or_else(|e| e.into_inner());
        match g.classes.iter_mut().find(|(c, _)| *c == cap) {
            Some((_, idle)) => idle.push(buf),
            None => {
                let at = g.classes.partition_point(|(c, _)| *c < cap);
                g.classes.insert(at, (cap, vec![buf]));
            }
        }
    }
}

impl<T: Scalar> Default for BufferPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Checkout guard: derefs to the pooled [`GlobalBuffer`] and returns it
/// to the pool's shelf on drop.
pub struct PooledBuffer<'p, T: Scalar> {
    pool: &'p BufferPool<T>,
    buf: Option<GlobalBuffer<T>>,
}

impl<T: Scalar> Deref for PooledBuffer<'_, T> {
    type Target = GlobalBuffer<T>;
    fn deref(&self) -> &GlobalBuffer<T> {
        self.buf.as_ref().expect("present until drop")
    }
}

impl<T: Scalar> Drop for PooledBuffer<'_, T> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.release(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lanes_from_fn, Device, FULL_MASK, K40C, WARP_SIZE};

    #[test]
    fn size_classes_round_up_to_powers_of_two() {
        assert_eq!(BufferPool::<u32>::size_class(0), 1);
        assert_eq!(BufferPool::<u32>::size_class(1), 1);
        assert_eq!(BufferPool::<u32>::size_class(1000), 1024);
        assert_eq!(BufferPool::<u32>::size_class(1024), 1024);
        assert_eq!(BufferPool::<u32>::size_class(1025), 2048);
    }

    #[test]
    fn checkout_reuses_the_shelved_allocation() {
        let pool = BufferPool::<u32>::new();
        {
            let a = pool.acquire(100);
            a.set(0, 42);
            assert_eq!(a.len(), 128);
        }
        assert_eq!((pool.allocs(), pool.reuses(), pool.idle()), (1, 0, 1));
        {
            let b = pool.acquire(120);
            assert_eq!(b.get(0), 42, "same allocation, stale contents");
            let c = pool.acquire(100);
            assert_eq!(c.get(0), 0, "shelf empty: second checkout is fresh");
        }
        assert_eq!((pool.allocs(), pool.reuses(), pool.idle()), (2, 1, 2));
        let z = pool.acquire_zeroed(100);
        assert_eq!(z.get(0), 0, "zeroed checkout clears stale contents");
        assert_eq!(pool.reuses(), 2);
    }

    /// The satellite-1 regression: per-buffer `read_sectors` is a lifetime
    /// counter, and pooled reuse must keep accumulating it — a pool that
    /// recreated (or reset) shelved buffers would silently zero the
    /// counter between launches and every "buffer X was read K times"
    /// claim made across a batch would be wrong.
    #[test]
    fn read_sectors_accumulates_across_pooled_reuse() {
        let n = 4 * WARP_SIZE;
        let pool = BufferPool::<u32>::new();
        let dev = Device::sequential(K40C);
        let one_launch = |buf: &GlobalBuffer<u32>| {
            dev.launch("pool-read", 1, 1, |blk| {
                for w in blk.warps() {
                    for c in 0..n / WARP_SIZE {
                        w.gather(buf, lanes_from_fn(|l| c * WARP_SIZE + l), FULL_MASK);
                    }
                }
            });
        };
        let per_launch = {
            let a = pool.acquire(n);
            one_launch(&a);
            a.read_sectors()
        };
        assert!(per_launch > 0);
        for round in 1..=3u64 {
            let b = pool.acquire(n);
            assert_eq!(
                b.read_sectors(),
                round * per_launch,
                "counter must survive the shelf round-trip"
            );
            one_launch(&b);
            assert_eq!(b.read_sectors(), (round + 1) * per_launch);
        }
        assert_eq!(pool.allocs(), 1, "one allocation serves every round");
        assert_eq!(pool.reuses(), 3);
    }

    /// Tracked buffers reuse safely across launches: each launch opens a
    /// fresh race-detector epoch, so marks from the previous checkout
    /// cannot collide — including through a host-side zero (mark-free).
    #[test]
    fn tracked_buffers_are_reusable_across_launches() {
        let pool = BufferPool::<u32>::new_tracked();
        let dev = Device::new(K40C);
        for round in 0..3u32 {
            let out = pool.acquire_zeroed(WARP_SIZE);
            dev.launch("pool-write", 1, 1, |blk| {
                for w in blk.warps() {
                    w.scatter(
                        &out,
                        lanes_from_fn(|l| l),
                        lanes_from_fn(|l| round * 100 + l as u32),
                        FULL_MASK,
                    );
                }
            });
            assert_eq!(out.get(5), round * 100 + 5);
        }
        assert_eq!((pool.allocs(), pool.reuses()), (1, 2));
    }
}
