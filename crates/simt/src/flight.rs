//! # Flight recorder — bounded causal event tracing for lookback pipelines
//!
//! The obs layer ([`crate::obs`]) counts *how much* happened (resolves,
//! walk depths, spin polls); this module records *who waited on whom*.
//! Kernels and [`primitives`-style lookback helpers][lb] emit
//! [`FlightEvent`]s into a bounded per-block ring riding the uncounted
//! [`crate::ObsCells`] side-channel, so recording never perturbs
//! [`crate::BlockStats`] or the cost model. Each event is stamped with
//! its block id (by `Device::launch`, post-retirement), the tile ticket
//! it concerns, and a per-block logical sequence number — so the merged
//! stream, sorted by `(block, seq)`, is a deterministic function of the
//! schedule, and per-kind event *counts* are schedule-independent.
//!
//! From a launch's [`FlightLog`], [`analyze`] derives the tile dependency
//! DAG (binding edges `tile → tile - depth` from `Resolve` events) and
//! the **exact** critical path: the longest chain of *stalled* resolves
//! (edges whose waiter actually spun), weighted by each tile's modeled
//! block time. On the sequential scheduler no resolve ever spins, so the
//! exact path collapses to `overhead + max_block` — precisely
//! [`crate::launch_report`]'s estimate — while adversarial schedules
//! surface the extra serialization the estimate cannot see.
//!
//! The ring is bounded ([`DEFAULT_FLIGHT_CAPACITY`] events per block, an
//! O(capacity) overhead); overflow increments [`FlightLog::dropped`]
//! rather than silently wrapping, and [`with_flight_capacity`] scales or
//! disables it (capacity 0) per host thread.
//!
//! [lb]: crate::ObsCells::flight_emit

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

use crate::json::Json;
use crate::profile::DeviceProfile;
use crate::stats::LaunchRecord;

/// What a [`FlightEvent`] records. One variant per causally interesting
/// step of a decoupled-lookback pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A block claimed its tile ticket from the device atomic.
    TicketClaim,
    /// One warp-sized row group's `AGGREGATE` record became visible.
    PublishAggregate,
    /// One row group's `INCLUSIVE` record became visible.
    PublishInclusive,
    /// The counted read of predecessor `ticket - 1`'s full record (once
    /// per row group, regardless of how far the uncounted walk went —
    /// which keeps per-kind counts schedule-independent).
    LookbackRead,
    /// One row group's look-back walk completed; `a` = walk depth,
    /// `b` = uncounted spin polls it took (saturated to `u32::MAX`).
    Resolve,
    /// The block finished scattering its tile's elements.
    ScatterComplete,
}

impl EventKind {
    /// Every kind, in emission order within a well-formed tile.
    pub const ALL: [EventKind; 6] = [
        EventKind::TicketClaim,
        EventKind::PublishAggregate,
        EventKind::PublishInclusive,
        EventKind::LookbackRead,
        EventKind::Resolve,
        EventKind::ScatterComplete,
    ];

    pub fn name(self) -> &'static str {
        match self {
            EventKind::TicketClaim => "ticket_claim",
            EventKind::PublishAggregate => "publish_aggregate",
            EventKind::PublishInclusive => "publish_inclusive",
            EventKind::LookbackRead => "lookback_read",
            EventKind::Resolve => "resolve",
            EventKind::ScatterComplete => "scatter_complete",
        }
    }
}

/// One recorded event. 24 bytes; the ring stores these by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    pub kind: EventKind,
    /// Emitting block id, stamped by `Device::launch` when the block
    /// retires (the ring itself doesn't know its block).
    pub block: u32,
    /// Tile ticket the event concerns.
    pub ticket: u32,
    /// Kind-specific: row group for publishes and reads, walk depth for
    /// [`EventKind::Resolve`], 0 otherwise.
    pub a: u32,
    /// Kind-specific: spin polls for [`EventKind::Resolve`] (saturating
    /// cast), 0 otherwise.
    pub b: u32,
    /// Logical sequence number within the emitting block. Counts every
    /// emission attempt, including dropped ones — a gap-free `seq` with
    /// `dropped == 0` certifies a complete stream.
    pub seq: u32,
}

/// Default per-block ring capacity, in events. A sweep block emits
/// `2 + 4 * row_groups` events, so 4096 covers every kernel in this
/// repo with orders of magnitude to spare; launches that legitimately
/// overflow are flagged via [`FlightLog::dropped`], never silently cut.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

thread_local! {
    static CAPACITY: Cell<usize> = const { Cell::new(DEFAULT_FLIGHT_CAPACITY) };
}

/// The per-block ring capacity launches on this host thread arm blocks
/// with (0 = recorder off).
pub fn flight_capacity() -> usize {
    CAPACITY.with(Cell::get)
}

/// Run `f` with the flight-ring capacity set to `cap` events per block
/// for launches on this host thread, restoring the previous value on the
/// way out (RAII guard, like [`crate::with_telemetry`]). `cap == 0`
/// disables the recorder entirely: no allocation, no events, and
/// [`LaunchRecord::flight`] stays `None`.
pub fn with_flight_capacity<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            CAPACITY.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CAPACITY.with(|c| c.replace(cap)));
    f()
}

/// One launch's merged event stream: every block's ring, drained at
/// retirement, block-stamped and sorted by `(block, seq)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightLog {
    /// Events sorted by `(block, seq)`.
    pub events: Vec<FlightEvent>,
    /// Emissions that found their block's ring full. Non-zero means the
    /// stream is truncated — [`analyze`] flags it rather than trusting a
    /// partial DAG.
    pub dropped: u64,
}

impl FlightLog {
    /// Whether any block's ring overflowed.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Events of one kind.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// `(kind name, count)` for every kind, in [`EventKind::ALL`] order.
    /// The schedule-independence tests compare these across schedulers.
    pub fn kind_counts(&self) -> Vec<(&'static str, usize)> {
        EventKind::ALL
            .iter()
            .map(|&k| (k.name(), self.count(k)))
            .collect()
    }
}

/// The tile dependency DAG and exact critical path derived from one
/// launch's [`FlightLog`] plus its per-block stats.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightAnalysis {
    pub label: String,
    /// Tiles that appear in the event stream.
    pub tiles: usize,
    /// Distinct binding edges `tile → tile - depth` (depth ≥ 1) derived
    /// from `Resolve` events.
    pub edges: usize,
    /// Edges whose resolve actually spun — only these serialize tiles,
    /// and only they weight the critical path.
    pub stall_edges: usize,
    /// Deepest look-back walk observed.
    pub max_depth: u32,
    /// **Exact** critical path: launch overhead plus the longest
    /// stall-edge chain of modeled per-tile block times. With zero stall
    /// edges (sequential schedule) this equals
    /// [`modeled_critical_path_seconds`](Self::modeled_critical_path_seconds)
    /// exactly.
    pub critical_path_seconds: f64,
    /// Tickets along the critical chain, dependency-first.
    pub critical_chain: Vec<u32>,
    /// Slowest single block's modeled time (overhead excluded).
    pub max_block_seconds: f64,
    /// [`crate::launch_report`]'s estimate (`overhead + max_block`) for
    /// the same record, for side-by-side comparison.
    pub modeled_critical_path_seconds: f64,
    /// Serialization the model can't see: `critical - modeled`, clamped
    /// at zero.
    pub stall_extra_seconds: f64,
    /// The flight log overflowed; the DAG (and path) may be partial.
    pub truncated: bool,
}

/// Derive a [`FlightAnalysis`] from a record that carried both a flight
/// log and [`crate::Telemetry::PerBlock`] stats; `None` if either is
/// missing (or the launch had no blocks).
pub fn analyze(rec: &LaunchRecord, profile: &DeviceProfile) -> Option<FlightAnalysis> {
    let flight = rec.flight.as_ref()?;
    let per_block = rec.per_block.as_ref()?;
    if per_block.is_empty() {
        return None;
    }
    let overhead = profile.launch_overhead_us * 1e-6;
    // Per-block modeled time with the fixed launch overhead stripped,
    // exactly as `launch_report` computes it.
    let block_secs: Vec<f64> = per_block
        .iter()
        .map(|b| (profile.estimate(b) - overhead).max(0.0))
        .collect();
    let max_block = block_secs.iter().cloned().fold(0.0f64, f64::max);

    // Tile → block mapping from any stamped event mentioning the ticket.
    let mut tile_block: BTreeMap<u32, u32> = BTreeMap::new();
    for e in &flight.events {
        tile_block.entry(e.ticket).or_insert(e.block);
    }
    // Binding edges from Resolve events; an edge stalls if any resolve
    // of that (tile, pred) pair spun.
    let mut preds: BTreeMap<u32, BTreeMap<u32, bool>> = BTreeMap::new();
    let mut max_depth = 0u32;
    for e in &flight.events {
        if e.kind == EventKind::Resolve && e.a >= 1 {
            max_depth = max_depth.max(e.a);
            let pred = e.ticket - e.a;
            let stalled = preds
                .entry(e.ticket)
                .or_default()
                .entry(pred)
                .or_insert(false);
            *stalled |= e.b > 0;
        }
    }
    let edges: usize = preds.values().map(BTreeMap::len).sum();
    let stall_edges: usize = preds
        .values()
        .flat_map(BTreeMap::values)
        .filter(|&&s| s)
        .count();

    // Finish time per tile under unlimited parallelism: a tile's own
    // modeled block time, serialized behind the latest *stalled*
    // predecessor (non-stalled edges were satisfied before the waiter
    // even looked, so they add nothing). Tickets ascend along edges
    // (pred < tile), so one ascending pass settles the DAG.
    let secs_of = |tile: u32| -> f64 {
        tile_block
            .get(&tile)
            .and_then(|&b| block_secs.get(b as usize))
            .copied()
            .unwrap_or(0.0)
    };
    let mut finish: BTreeMap<u32, f64> = BTreeMap::new();
    let mut best_pred: BTreeMap<u32, u32> = BTreeMap::new();
    for &tile in tile_block.keys() {
        let mut start = 0.0f64;
        if let Some(ps) = preds.get(&tile) {
            for (&p, &stalled) in ps {
                if !stalled {
                    continue;
                }
                let pf = finish.get(&p).copied().unwrap_or_else(|| secs_of(p));
                if pf > start {
                    start = pf;
                    best_pred.insert(tile, p);
                }
            }
        }
        finish.insert(tile, start + secs_of(tile));
    }
    let (&last, &longest) = finish
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap_or((&0, &0.0));
    // Blocks outside the tile map (e.g. a launch with no lookback at
    // all) still bound the path from below by their own modeled time.
    let critical = overhead + longest.max(max_block);
    let modeled = overhead + max_block;

    let mut chain = vec![last];
    let mut cur = last;
    while let Some(&p) = best_pred.get(&cur) {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    if finish.is_empty() {
        chain.clear();
    }

    Some(FlightAnalysis {
        label: rec.label.clone(),
        tiles: tile_block.len(),
        edges,
        stall_edges,
        max_depth,
        critical_path_seconds: critical,
        critical_chain: chain,
        max_block_seconds: max_block,
        modeled_critical_path_seconds: modeled,
        stall_extra_seconds: (critical - modeled).max(0.0),
        truncated: flight.truncated(),
    })
}

impl FlightAnalysis {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("tiles".into(), Json::int(self.tiles as u64)),
            ("edges".into(), Json::int(self.edges as u64)),
            ("stall_edges".into(), Json::int(self.stall_edges as u64)),
            ("max_depth".into(), Json::int(self.max_depth as u64)),
            (
                "critical_path_seconds".into(),
                Json::Num(self.critical_path_seconds),
            ),
            (
                "critical_chain".into(),
                Json::Arr(
                    self.critical_chain
                        .iter()
                        .map(|&t| Json::int(t as u64))
                        .collect(),
                ),
            ),
            (
                "max_block_seconds".into(),
                Json::Num(self.max_block_seconds),
            ),
            (
                "modeled_critical_path_seconds".into(),
                Json::Num(self.modeled_critical_path_seconds),
            ),
            (
                "stall_extra_seconds".into(),
                Json::Num(self.stall_extra_seconds),
            ),
            ("truncated".into(), Json::Bool(self.truncated)),
        ])
    }
}

/// Per-tile schedule reconstructed from the stall DAG: `(ticket, start,
/// finish)` in modeled seconds from launch start (overhead excluded).
/// Used by [`crate::trace`] to lay tiles out on a timeline with flow
/// arrows along the stall edges. Returns the tiles ascending by start
/// time and the stalled edges as `(pred, tile)` pairs.
#[allow(clippy::type_complexity)]
pub(crate) fn tile_schedule(
    rec: &LaunchRecord,
    profile: &DeviceProfile,
) -> Option<(Vec<(u32, f64, f64)>, Vec<(u32, u32)>)> {
    let flight = rec.flight.as_ref()?;
    let per_block = rec.per_block.as_ref()?;
    if per_block.is_empty() || flight.events.is_empty() {
        return None;
    }
    let overhead = profile.launch_overhead_us * 1e-6;
    let block_secs: Vec<f64> = per_block
        .iter()
        .map(|b| (profile.estimate(b) - overhead).max(0.0))
        .collect();
    let mut tile_block: BTreeMap<u32, u32> = BTreeMap::new();
    let mut stall: BTreeSet<(u32, u32)> = BTreeSet::new();
    for e in &flight.events {
        tile_block.entry(e.ticket).or_insert(e.block);
        if e.kind == EventKind::Resolve && e.a >= 1 && e.b > 0 {
            stall.insert((e.ticket - e.a, e.ticket));
        }
    }
    let mut out = Vec::with_capacity(tile_block.len());
    let mut finish: BTreeMap<u32, f64> = BTreeMap::new();
    for (&tile, &b) in &tile_block {
        let start = stall
            .iter()
            .filter(|&&(_, t)| t == tile)
            .filter_map(|&(p, _)| finish.get(&p))
            .cloned()
            .fold(0.0f64, f64::max);
        let end = start + block_secs.get(b as usize).copied().unwrap_or(0.0);
        finish.insert(tile, end);
        out.push((tile, start, end));
    }
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    Some((out, stall.into_iter().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ObsStats;
    use crate::profile::K40C;
    use crate::stats::BlockStats;

    fn ev(kind: EventKind, block: u32, ticket: u32, a: u32, b: u32, seq: u32) -> FlightEvent {
        FlightEvent {
            kind,
            block,
            ticket,
            a,
            b,
            seq,
        }
    }

    fn rec_with(events: Vec<FlightEvent>, per_block: Vec<BlockStats>) -> LaunchRecord {
        LaunchRecord {
            label: "t/sweep".into(),
            blocks: per_block.len(),
            warps_per_block: 1,
            stats: BlockStats::default(),
            obs: ObsStats::default(),
            per_block: Some(per_block),
            flight: Some(FlightLog { events, dropped: 0 }),
            seconds: 1e-6,
            stream: crate::stream::HOST_STREAM,
            stream_seq: 0,
        }
    }

    fn blocks(n: usize) -> Vec<BlockStats> {
        (0..n)
            .map(|_| BlockStats {
                sectors: 100,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn capacity_knob_restores_on_exit_and_panic() {
        assert_eq!(flight_capacity(), DEFAULT_FLIGHT_CAPACITY);
        with_flight_capacity(7, || assert_eq!(flight_capacity(), 7));
        assert_eq!(flight_capacity(), DEFAULT_FLIGHT_CAPACITY);
        let _ = std::panic::catch_unwind(|| with_flight_capacity(3, || panic!("boom")));
        assert_eq!(flight_capacity(), DEFAULT_FLIGHT_CAPACITY);
    }

    #[test]
    fn no_stalls_means_exact_equals_modeled() {
        // 3 tiles, each resolving depth 1 without spinning: the chain is
        // causal but never serialized, so exact == overhead + max_block.
        let events = vec![
            ev(EventKind::Resolve, 0, 0, 0, 0, 0),
            ev(EventKind::Resolve, 1, 1, 1, 0, 0),
            ev(EventKind::Resolve, 2, 2, 1, 0, 0),
        ];
        let a = analyze(&rec_with(events, blocks(3)), &K40C).unwrap();
        assert_eq!(a.tiles, 3);
        assert_eq!(a.edges, 2);
        assert_eq!(a.stall_edges, 0);
        assert_eq!(a.critical_path_seconds, a.modeled_critical_path_seconds);
        assert_eq!(a.stall_extra_seconds, 0.0);
    }

    #[test]
    fn stalled_chain_serializes_the_path() {
        // tile1 spun waiting on tile0, tile2 spun waiting on tile1: the
        // exact path is 3 chained block times, not 1.
        let events = vec![
            ev(EventKind::Resolve, 0, 0, 0, 0, 0),
            ev(EventKind::Resolve, 1, 1, 1, 9, 0),
            ev(EventKind::Resolve, 2, 2, 1, 9, 0),
        ];
        let a = analyze(&rec_with(events, blocks(3)), &K40C).unwrap();
        assert_eq!(a.stall_edges, 2);
        assert_eq!(a.critical_chain, vec![0, 1, 2]);
        let overhead = K40C.launch_overhead_us * 1e-6;
        let per = a.max_block_seconds;
        let expect = overhead + 3.0 * per;
        assert!((a.critical_path_seconds - expect).abs() < 1e-15);
        assert!(a.stall_extra_seconds > 0.0);
    }

    #[test]
    fn deep_walks_skip_unstalled_predecessors() {
        // tile2 resolved depth 2 (walked past tile1 to tile0) with spins:
        // its stall edge targets tile0 directly.
        let events = vec![
            ev(EventKind::Resolve, 0, 0, 0, 0, 0),
            ev(EventKind::Resolve, 1, 1, 1, 0, 0),
            ev(EventKind::Resolve, 2, 2, 2, 5, 0),
        ];
        let a = analyze(&rec_with(events, blocks(3)), &K40C).unwrap();
        assert_eq!(a.max_depth, 2);
        assert_eq!(a.stall_edges, 1);
        assert_eq!(a.critical_chain, vec![0, 2]);
    }

    #[test]
    fn analysis_needs_flight_and_per_block() {
        let mut r = rec_with(vec![], blocks(2));
        r.flight = None;
        assert!(analyze(&r, &K40C).is_none());
        let mut r = rec_with(vec![], blocks(2));
        r.per_block = None;
        assert!(analyze(&r, &K40C).is_none());
        let r = rec_with(vec![], vec![]);
        assert!(analyze(&r, &K40C).is_none());
        // No events at all is fine: path == modeled, empty chain.
        let a = analyze(&rec_with(vec![], blocks(2)), &K40C).unwrap();
        assert_eq!(a.tiles, 0);
        assert_eq!(a.critical_path_seconds, a.modeled_critical_path_seconds);
        assert!(a.critical_chain.is_empty());
    }

    #[test]
    fn truncation_is_propagated() {
        let mut r = rec_with(vec![ev(EventKind::Resolve, 0, 0, 0, 0, 0)], blocks(1));
        r.flight.as_mut().unwrap().dropped = 3;
        assert!(r.flight.as_ref().unwrap().truncated());
        assert!(analyze(&r, &K40C).unwrap().truncated);
    }

    #[test]
    fn kind_counts_cover_every_kind() {
        let log = FlightLog {
            events: vec![
                ev(EventKind::TicketClaim, 0, 0, 0, 0, 0),
                ev(EventKind::Resolve, 0, 0, 0, 0, 1),
                ev(EventKind::Resolve, 1, 1, 1, 0, 0),
            ],
            dropped: 0,
        };
        let counts = log.kind_counts();
        assert_eq!(counts.len(), EventKind::ALL.len());
        assert!(counts.contains(&("ticket_claim", 1)));
        assert!(counts.contains(&("resolve", 2)));
        assert!(counts.contains(&("scatter_complete", 0)));
    }

    #[test]
    fn tile_schedule_orders_by_start() {
        let events = vec![
            ev(EventKind::Resolve, 0, 0, 0, 0, 0),
            ev(EventKind::Resolve, 1, 1, 1, 4, 0),
        ];
        let (tiles, edges) = tile_schedule(&rec_with(events, blocks(2)), &K40C).unwrap();
        assert_eq!(tiles.len(), 2);
        assert_eq!(edges, vec![(0, 1)]);
        assert!(tiles[0].1 <= tiles[1].1);
        // tile 1 starts exactly when tile 0 finishes.
        assert_eq!(tiles[1].1, tiles[0].2);
    }

    #[test]
    fn analysis_json_has_the_headline_fields() {
        let a = analyze(
            &rec_with(vec![ev(EventKind::Resolve, 0, 0, 0, 0, 0)], blocks(1)),
            &K40C,
        )
        .unwrap();
        let j = a.to_json().pretty();
        for field in [
            "critical_path_seconds",
            "modeled_critical_path_seconds",
            "stall_edges",
            "truncated",
        ] {
            assert!(j.contains(field), "missing {field}");
        }
    }
}
