//! Thread-block execution context.
//!
//! A block owns up to 48 kB of shared memory and `warps_per_block` warps.
//! Warps of one block execute sequentially inside the simulator (the block
//! is single-threaded on the host); `sync()` marks the barrier points that
//! separate warp-level phases, exactly where `__syncthreads()` would sit in
//! the CUDA source. Because warps run to completion between barriers, any
//! kernel that is correct under this schedule is correct under CUDA's
//! arbitrary warp interleaving *provided* cross-warp shared-memory
//! communication only happens across a `sync()` — the same discipline a
//! warp-synchronous CUDA kernel must follow.

use std::cell::Cell;

use crate::memory::Scalar;
use crate::shared::SharedBuf;
use crate::stats::{BlockStats, StatCells};
use crate::warp::WarpCtx;

/// Shared memory capacity per block (K40c / GTX 750 Ti: 48 kB).
pub const SMEM_CAPACITY_BYTES: usize = 48 * 1024;

/// Execution context of one thread block.
pub struct BlockCtx {
    /// Block index within the grid (CUDA `blockIdx.x`).
    pub block_id: usize,
    /// Grid size in blocks (CUDA `gridDim.x`).
    pub num_blocks: usize,
    /// Warps per block (`N_W` in the paper; threads = 32 * warps).
    pub warps_per_block: usize,
    stats: StatCells,
    smem_used: Cell<usize>,
}

impl BlockCtx {
    pub(crate) fn new(block_id: usize, num_blocks: usize, warps_per_block: usize) -> Self {
        assert!(warps_per_block >= 1, "a block needs at least one warp");
        Self {
            block_id,
            num_blocks,
            warps_per_block,
            stats: StatCells::default(),
            smem_used: Cell::new(0),
        }
    }

    /// Threads per block.
    pub fn threads(&self) -> usize {
        self.warps_per_block * crate::lanes::WARP_SIZE
    }

    /// Iterate this block's warps (one warp-level phase).
    pub fn warps(&self) -> impl Iterator<Item = WarpCtx<'_>> + '_ {
        let base = self.block_id * self.warps_per_block;
        (0..self.warps_per_block).map(move |w| WarpCtx::new(w, base + w, &self.stats))
    }

    /// A single warp of this block.
    pub fn warp(&self, w: usize) -> WarpCtx<'_> {
        assert!(w < self.warps_per_block);
        WarpCtx::new(w, self.block_id * self.warps_per_block + w, &self.stats)
    }

    /// Block-wide barrier (`__syncthreads()`); counted for the cost model.
    pub fn sync(&self) {
        StatCells::bump(&self.stats.barriers, 1);
    }

    /// Allocate a shared-memory array; panics if the block exceeds 48 kB,
    /// like a CUDA launch failure would.
    pub fn alloc_shared<T: Scalar>(&self, len: usize) -> SharedBuf<'_, T> {
        let bytes = len * T::BYTES as usize;
        let used = self.smem_used.get() + bytes;
        assert!(
            used <= SMEM_CAPACITY_BYTES,
            "shared memory overflow: {used} bytes requested, capacity {SMEM_CAPACITY_BYTES}"
        );
        self.smem_used.set(used);
        SharedBuf::new(len, &self.stats)
    }

    /// Shared-memory bytes allocated so far.
    pub fn shared_used(&self) -> usize {
        self.smem_used.get()
    }

    /// The block's counter bundle (for primitives layered on the simulator).
    pub fn stats(&self) -> &StatCells {
        &self.stats
    }

    /// Retire the block: counted stats plus the uncounted introspection
    /// snapshot (kept separate so obs can never leak into the cost model).
    pub(crate) fn into_parts(
        self,
    ) -> (
        BlockStats,
        crate::obs::ObsStats,
        (Vec<crate::flight::FlightEvent>, u64),
    ) {
        let flight = self.stats.obs.take_flight();
        (self.stats.snapshot(), self.stats.obs.snapshot(), flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::WARP_SIZE;

    #[test]
    fn warp_ids_are_global() {
        let blk = BlockCtx::new(3, 8, 4);
        let ids: Vec<_> = blk.warps().map(|w| (w.warp_id, w.global_warp_id)).collect();
        assert_eq!(ids, vec![(0, 12), (1, 13), (2, 14), (3, 15)]);
        assert_eq!(blk.threads(), 4 * WARP_SIZE);
    }

    #[test]
    fn sync_counts_barriers() {
        let blk = BlockCtx::new(0, 1, 1);
        blk.sync();
        blk.sync();
        assert_eq!(blk.into_parts().0.barriers, 2);
    }

    #[test]
    fn shared_allocation_tracks_bytes() {
        let blk = BlockCtx::new(0, 1, 8);
        let _a = blk.alloc_shared::<u32>(1024);
        assert_eq!(blk.shared_used(), 4096);
        let _b = blk.alloc_shared::<u64>(512);
        assert_eq!(blk.shared_used(), 8192);
    }

    #[test]
    #[should_panic(expected = "shared memory overflow")]
    fn shared_overflow_panics() {
        let blk = BlockCtx::new(0, 1, 8);
        let _a = blk.alloc_shared::<u32>(12 * 1024); // exactly 48 kB: ok
        let _b = blk.alloc_shared::<u32>(1); // one more word: overflow
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn zero_warp_block_rejected() {
        let _ = BlockCtx::new(0, 1, 0);
    }
}
