//! # ms-rng — a minimal, dependency-free seeded PRNG
//!
//! The workspace originally pulled in the `rand` crate for workload
//! generation (bench key distributions, SSSP graph generators, property
//! tests). This build runs in a network-restricted environment where no
//! external crate can be fetched, so the few primitives those call sites
//! need are implemented here: a 64-bit seeded generator with uniform
//! integer ranges and Bernoulli draws. Quality is xoshiro256** — far more
//! than workload generation needs — and every stream is reproducible from
//! its seed, which the benches rely on for run-to-run comparability.

/// A seeded xoshiro256** generator.
///
/// The 256-bit state is initialized from a 64-bit seed through SplitMix64,
/// the standard seeding recipe, so nearby seeds still produce decorrelated
/// streams.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Deterministically seed the generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Uses Lemire-style rejection over the range width, so the result is
    /// unbiased. Panics on an empty range, matching `rand`'s contract.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: IntRange<T>,
    {
        let (lo, width) = range.bounds();
        T::from_offset(lo, self.uniform_below(width))
    }

    /// Unbiased uniform draw from `0..=width_minus_one_encoded`, where the
    /// encoded width of 0 means the full 2^64 range.
    #[inline]
    fn uniform_below(&mut self, width: u64) -> u64 {
        if width == 0 {
            return self.next_u64(); // full-range draw
        }
        // Rejection sampling on the top bits: take the smallest bit mask
        // covering `width` and retry until the draw lands inside.
        let mask = u64::MAX >> (width - 1).leading_zeros().min(63);
        loop {
            let v = self.next_u64() & mask;
            if v < width {
                return v;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform `f64` in [0, 1).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types drawable by [`SmallRng::gen_range`].
pub trait UniformInt: Copy {
    fn to_u64(self) -> u64;
    fn from_offset(lo: Self, offset: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_offset(lo: Self, offset: u64) -> Self {
                lo.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Range forms accepted by [`SmallRng::gen_range`].
pub trait IntRange<T: UniformInt> {
    /// Returns `(lo, width)`, where a width of 0 encodes the full 2^64
    /// span (only reachable for `u64::MIN..=u64::MAX`).
    fn bounds(&self) -> (T, u64);
}

impl<T: UniformInt> IntRange<T> for std::ops::Range<T> {
    #[inline]
    fn bounds(&self) -> (T, u64) {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range called with an empty range");
        (self.start, hi - lo)
    }
}

impl<T: UniformInt> IntRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn bounds(&self) -> (T, u64) {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range called with an empty range");
        (*self.start(), (hi - lo).wrapping_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let x: usize = rng.gen_range(0..3);
            assert!(x < 3);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 1_000, "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as i64 - 25_000).abs() < 1_500, "{hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn u64_wide_ranges_work() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range((1u64 << 32)..(1u64 << 33));
            assert!(((1u64 << 32)..(1u64 << 33)).contains(&v));
        }
    }
}
