//! Application-level integration: delta-stepping SSSP over the full stack
//! (graph generators -> SIMT kernels -> multisplit bucketing), validated
//! against serial Dijkstra.

use simt::{Device, K40C};
use sssp::{
    bellman_ford, delta_stepping, dijkstra, low_diameter, rmat, uniform_random, Bucketing, INF,
};

#[test]
fn all_strategies_agree_on_all_generator_families() {
    let graphs = [
        ("uniform", uniform_random(1200, 6, 60, 1)),
        ("rmat", rmat(10, 6, 60, 2)),
        ("low-diameter", low_diameter(900, 3, 60, 3)),
    ];
    for (name, g) in &graphs {
        let reference = dijkstra(g, 0);
        for s in [
            Bucketing::Multisplit { m: 10 },
            Bucketing::NearFar,
            Bucketing::SortBased,
        ] {
            let dev = Device::new(K40C);
            let r = delta_stepping(&dev, g, 0, 16, s);
            assert_eq!(r.dist, reference, "{name}/{}", s.name());
        }
    }
}

#[test]
fn bellman_ford_and_delta_stepping_agree() {
    let g = uniform_random(600, 5, 30, 9);
    let (bf, _) = bellman_ford(&g, 0);
    let dev = Device::new(K40C);
    let r = delta_stepping(&dev, &g, 0, 8, Bucketing::Multisplit { m: 8 });
    assert_eq!(r.dist, bf);
}

#[test]
fn different_sources_work() {
    let g = uniform_random(500, 6, 40, 4);
    for src in [0u32, 250, 499] {
        let dev = Device::new(K40C);
        let r = delta_stepping(&dev, &g, src, 16, Bucketing::Multisplit { m: 10 });
        assert_eq!(r.dist, dijkstra(&g, src), "source {src}");
        assert_eq!(r.dist[src as usize], 0);
    }
}

#[test]
fn multisplit_bucketing_reduces_reorganization_cost() {
    // The end-to-end point of the paper (footnote 1): replacing sort-based
    // bucketing with multisplit reduces reorganization time.
    let g = uniform_random(4000, 8, 80, 11);
    let reference = dijkstra(&g, 0);
    let run = |s: Bucketing| {
        let dev = Device::new(K40C);
        let r = delta_stepping(&dev, &g, 0, 32, s);
        assert_eq!(r.dist, reference);
        r
    };
    let ms = run(Bucketing::Multisplit { m: 2 });
    let nf = run(Bucketing::NearFar);
    let sort = run(Bucketing::SortBased);
    assert!(
        ms.bucketing_seconds < sort.bucketing_seconds,
        "multisplit must beat sort bucketing"
    );
    assert!(
        ms.bucketing_seconds <= nf.bucketing_seconds * 1.05,
        "multisplit should not lose to near-far"
    );
    assert!(
        ms.total_seconds < sort.total_seconds,
        "app-level speedup over sort bucketing"
    );
}

#[test]
fn unreachable_components_and_isolated_nodes() {
    let g = sssp::CsrGraph::from_edges(6, &[(0, 1, 2), (1, 2, 3), (4, 5, 1)]);
    let dev = Device::new(K40C);
    let r = delta_stepping(&dev, &g, 0, 4, Bucketing::Multisplit { m: 4 });
    assert_eq!(r.dist, vec![0, 2, 5, INF, INF, INF]);
}

#[test]
fn zero_weight_edges_converge() {
    let g = sssp::CsrGraph::from_edges(4, &[(0, 1, 0), (1, 2, 0), (2, 3, 5), (0, 3, 6)]);
    let dev = Device::new(K40C);
    let r = delta_stepping(&dev, &g, 0, 3, Bucketing::Multisplit { m: 4 });
    assert_eq!(r.dist, vec![0, 0, 0, 5]);
}
