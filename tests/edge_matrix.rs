//! Degenerate-input matrix (ISSUE 5 satellite): zero-length,
//! single-element, and all-one-bucket inputs across every public entry
//! point — host-slice multisplit and multisplit_kv, multisplit_device for
//! all seven methods, the compaction primitives, and both scan strategies —
//! on parallel, sequential, and adversarial devices alike.

use multisplit::{
    multisplit, multisplit_device, multisplit_kv, multisplit_kv_ref, no_values, FnBuckets, Method,
    RangeBuckets,
};
use primitives::ScanStrategy;
use simt::{AdvSchedule, Device, GlobalBuffer, K40C};

const METHODS: [Method; 7] = [
    Method::Direct,
    Method::WarpLevel,
    Method::BlockLevel,
    Method::LargeM,
    Method::Fused,
    Method::FusedLargeM,
    Method::Onesweep,
];

/// One device of each schedule kind; every check below runs on all three.
fn devices() -> [Device; 3] {
    [
        Device::new(K40C),
        Device::sequential(K40C),
        Device::adversarial(K40C, AdvSchedule::from_seed(0xED6E)),
    ]
}

fn m_for(method: Method) -> u32 {
    // Large-m pipelines require m > 32; the rest take any m <= 32.
    match method {
        Method::LargeM | Method::FusedLargeM => 48,
        _ => 7,
    }
}

#[test]
fn zero_length_input_is_a_clean_no_op_everywhere() {
    for dev in devices() {
        for method in METHODS {
            let m = m_for(method);
            let bucket = RangeBuckets::new(m);
            let empty = GlobalBuffer::<u32>::zeroed(0);
            let r = multisplit_device(&dev, method, &empty, no_values(), 0, &bucket, 8);
            assert_eq!(r.keys.len(), 0, "{method:?}");
            assert_eq!(r.offsets, vec![0; m as usize + 1], "{method:?}");
        }
        let (out, offs) = multisplit(&dev, &[], &RangeBuckets::new(5));
        assert!(out.is_empty());
        assert_eq!(offs, vec![0; 6]);
        let (ok, ov, offs) = multisplit_kv(&dev, &[], &[], &RangeBuckets::new(5));
        assert!(ok.is_empty() && ov.is_empty());
        assert_eq!(offs, vec![0; 6]);
        let empty = GlobalBuffer::<u32>::zeroed(0);
        let r = primitives::split_by_pred(&dev, "e", &empty, None, 0, 8, |k| k > 0);
        assert_eq!(r.false_count, 0);
        assert_eq!(r.keys.len(), 0);
        let (c, kept) = primitives::compact_by_pred(&dev, "e", &empty, 0, 8, |k| k > 0);
        assert_eq!((c.len(), kept), (0, 0));
        for strat in [ScanStrategy::Chained, ScanStrategy::Recursive] {
            let out = GlobalBuffer::<u32>::zeroed(0);
            let total = primitives::exclusive_scan_u32_with(strat, &dev, "e", &empty, &out, 0, 8);
            assert_eq!(total, 0, "{strat:?}");
        }
    }
}

#[test]
fn single_element_input_lands_in_its_bucket_everywhere() {
    for dev in devices() {
        for method in METHODS {
            let m = m_for(method);
            let bucket = RangeBuckets::new(m);
            let keys = [0xDEAD_BEEFu32];
            let buf = GlobalBuffer::from_slice(&keys);
            let r = multisplit_device(&dev, method, &buf, no_values(), 1, &bucket, 8);
            let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
            assert_eq!(r.keys.to_vec(), ek, "{method:?}");
            assert_eq!(r.offsets, eo, "{method:?}");
        }
        let (ok, ov, offs) = multisplit_kv(&dev, &[7], &[99], &RangeBuckets::new(4));
        assert_eq!((ok, ov), (vec![7], vec![99]));
        assert_eq!(offs, vec![0, 1, 1, 1, 1]);
        let one = GlobalBuffer::from_slice(&[3u32]);
        let r = primitives::split_by_pred(&dev, "s", &one, None, 1, 8, |k| k >= 2);
        assert_eq!((r.false_count, r.keys.to_vec()), (0, vec![3]));
        let (c, kept) = primitives::compact_by_pred(&dev, "s", &one, 1, 8, |k| k >= 2);
        assert_eq!((c.to_vec(), kept), (vec![3], 1));
        for strat in [ScanStrategy::Chained, ScanStrategy::Recursive] {
            let input = GlobalBuffer::from_slice(&[41u32]);
            let out = GlobalBuffer::<u32>::zeroed(1);
            let total = primitives::exclusive_scan_u32_with(strat, &dev, "s", &input, &out, 1, 8);
            assert_eq!((out.to_vec(), total), (vec![0], 41), "{strat:?}");
        }
    }
}

#[test]
fn all_one_bucket_input_is_the_identity_permutation_everywhere() {
    // Every key maps to bucket 2 of 5 (or 40 of 48 for large-m): the output
    // must be the untouched input (stability) with a step-function offset
    // table. 2600 elements spans a ragged final tile at wpb = 8.
    let keys: Vec<u32> = (0..2600u32).map(|i| i.wrapping_mul(2654435761)).collect();
    for dev in devices() {
        for method in METHODS {
            let (m, hot) = match method {
                Method::LargeM | Method::FusedLargeM => (48u32, 40u32),
                _ => (5, 2),
            };
            let one = FnBuckets::new(m, move |_| hot);
            let buf = GlobalBuffer::from_slice(&keys);
            let r = multisplit_device(&dev, method, &buf, no_values(), keys.len(), &one, 8);
            assert_eq!(r.keys.to_vec(), keys, "{method:?}");
            let expect: Vec<u32> = (0..=m)
                .map(|b| if b <= hot { 0 } else { keys.len() as u32 })
                .collect();
            assert_eq!(r.offsets, expect, "{method:?}");
        }
        // Predicate false for everything / true for everything.
        let buf = GlobalBuffer::from_slice(&keys);
        let r = primitives::split_by_pred(&dev, "a", &buf, None, keys.len(), 8, |_| false);
        assert_eq!(r.false_count as usize, keys.len());
        assert_eq!(r.keys.to_vec(), keys);
        let (c, kept) = primitives::compact_by_pred(&dev, "a", &buf, keys.len(), 8, |_| true);
        assert_eq!((c.to_vec(), kept as usize), (keys.clone(), keys.len()));
    }
}
