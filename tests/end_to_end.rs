//! Cross-crate integration: every multisplit implementation (ours and the
//! baselines) against the sequential reference, on shared workloads.

use multisplit::{
    multisplit_device, multisplit_kv_ref, multisplit_ref, no_values, DeltaBuckets, FnBuckets,
    LsbBuckets, Method, RangeBuckets,
};
use simt::{Device, GlobalBuffer, GTX750TI, K40C};

fn keys_for(n: usize, seed: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761).wrapping_add(seed * 97))
        .collect()
}

#[test]
fn all_methods_agree_with_reference_on_shared_workload() {
    let dev = Device::new(K40C);
    let n = 12_345;
    let data = keys_for(n, 1);
    let keys = GlobalBuffer::from_slice(&data);
    for m in [2u32, 7, 16, 32] {
        let bucket = RangeBuckets::new(m);
        let (expect, expect_offs) = multisplit_ref(&data, &bucket);
        for method in [Method::Direct, Method::WarpLevel, Method::BlockLevel] {
            let r = multisplit_device(&dev, method, &keys, no_values(), n, &bucket, 8);
            assert_eq!(r.keys.to_vec(), expect, "{method:?} m={m}");
            assert_eq!(r.offsets, expect_offs, "{method:?} m={m}");
        }
    }
    for m in [40u32, 256] {
        let bucket = RangeBuckets::new(m);
        let (expect, _) = multisplit_ref(&data, &bucket);
        let r = multisplit_device(&dev, Method::LargeM, &keys, no_values(), n, &bucket, 8);
        assert_eq!(r.keys.to_vec(), expect, "large-m m={m}");
    }
}

#[test]
fn baselines_agree_with_reference() {
    let dev = Device::new(K40C);
    let n = 9_000;
    let data = keys_for(n, 2);
    let keys = GlobalBuffer::from_slice(&data);
    let bucket = RangeBuckets::new(12);
    let (expect, expect_offs) = multisplit_ref(&data, &bucket);

    let (rb, rb_offs) = baselines::reduced_bit_multisplit(&dev, &keys, n, &bucket, 8);
    assert_eq!(rb.to_vec(), expect, "reduced-bit");
    assert_eq!(rb_offs, expect_offs);

    let (rs, _, rs_offs) =
        baselines::recursive_scan_multisplit(&dev, &keys, no_values(), n, &bucket, 8);
    assert_eq!(rs.to_vec(), expect, "recursive split");
    assert_eq!(rs_offs, expect_offs);

    // Randomized is valid but unordered within buckets.
    let (rand_out, rand_offs) = baselines::randomized_multisplit(
        &dev,
        &keys,
        n,
        &bucket,
        baselines::RandomizedConfig::default(),
    );
    multisplit::check_multisplit(&data, &rand_out.to_vec(), &rand_offs, &bucket).unwrap();
}

#[test]
fn key_value_pipelines_agree() {
    let dev = Device::new(K40C);
    let n = 6_000;
    let data = keys_for(n, 3);
    let vals: Vec<u32> = (0..n as u32).collect();
    let keys = GlobalBuffer::from_slice(&data);
    let values = GlobalBuffer::from_slice(&vals);
    let bucket = RangeBuckets::new(9);
    let (ek, ev, eo) = multisplit_kv_ref(&data, Some(&vals), &bucket);

    for method in [Method::Direct, Method::WarpLevel, Method::BlockLevel] {
        let r = multisplit_device(&dev, method, &keys, Some(&values), n, &bucket, 8);
        assert_eq!(r.keys.to_vec(), ek, "{method:?}");
        assert_eq!(r.values.unwrap().to_vec(), ev, "{method:?}");
        assert_eq!(r.offsets, eo, "{method:?}");
    }
    let (pk, pv, po) = baselines::reduced_bit_multisplit_kv(&dev, &keys, &values, n, &bucket, 8);
    assert_eq!(
        (pk.to_vec(), pv.to_vec(), po),
        (ek.clone(), ev.clone(), eo.clone()),
        "packed reduced-bit"
    );
    let (ik, iv, io) =
        baselines::reduced_bit_multisplit_kv_by_index(&dev, &keys, &values, n, &bucket, 8);
    assert_eq!(
        (ik.to_vec(), iv.to_vec(), io),
        (ek, ev, eo),
        "index reduced-bit"
    );
}

#[test]
fn large_m_handles_partial_final_warp() {
    // The large-m path builds per-warp histograms; exercise sizes where the
    // last warp (and last scan tile) is only partially filled, with and
    // without values, on both schedulers.
    for (n, m) in [(33usize, 40u32), (991, 64), (4_097, 300), (12_289, 1_024)] {
        let data = keys_for(n, 5);
        let vals: Vec<u32> = (0..n as u32).collect();
        let bucket = RangeBuckets::new(m);
        let (ek, ev, eo) = multisplit_kv_ref(&data, Some(&vals), &bucket);
        for dev in [Device::new(K40C), Device::sequential(K40C)] {
            let keys = GlobalBuffer::from_slice(&data);
            let values = GlobalBuffer::from_slice(&vals);
            let r = multisplit_device(&dev, Method::LargeM, &keys, Some(&values), n, &bucket, 8);
            assert_eq!(r.keys.to_vec(), ek, "keys n={n} m={m}");
            assert_eq!(r.values.unwrap().to_vec(), ev, "values n={n} m={m}");
            assert_eq!(r.offsets, eo, "offsets n={n} m={m}");
        }
    }
}

#[test]
fn custom_bucket_functions_work_end_to_end() {
    let dev = Device::new(K40C);
    let n = 4_000;
    let data = keys_for(n, 4);
    let keys = GlobalBuffer::from_slice(&data);

    // Delta buckets (SSSP style).
    let delta = DeltaBuckets::new(1000, 500_000_000, 6);
    let (expect, _) = multisplit_ref(&data, &delta);
    let r = multisplit_device(&dev, Method::BlockLevel, &keys, no_values(), n, &delta, 8);
    assert_eq!(r.keys.to_vec(), expect);

    // LSB buckets.
    let lsb = LsbBuckets { bits: 4 };
    let (expect, _) = multisplit_ref(&data, &lsb);
    let r = multisplit_device(&dev, Method::WarpLevel, &keys, no_values(), n, &lsb, 8);
    assert_eq!(r.keys.to_vec(), expect);

    // An adversarial closure: all keys to the last bucket.
    let last = FnBuckets::new(5, |_| 4);
    let r = multisplit_device(&dev, Method::Direct, &keys, no_values(), n, &last, 8);
    assert_eq!(r.keys.to_vec(), data, "stability => identity permutation");
    assert_eq!(r.offsets, vec![0, 0, 0, 0, 0, n as u32]);
}

#[test]
fn both_device_profiles_give_identical_results() {
    // The profile changes time estimates, never data.
    let n = 5_000;
    let data = keys_for(n, 5);
    let bucket = RangeBuckets::new(10);
    let mut outs = Vec::new();
    for profile in [K40C, GTX750TI] {
        let dev = Device::new(profile);
        let keys = GlobalBuffer::from_slice(&data);
        let r = multisplit_device(&dev, Method::BlockLevel, &keys, no_values(), n, &bucket, 8);
        outs.push((r.keys.to_vec(), r.offsets, dev.total_seconds()));
    }
    assert_eq!(outs[0].0, outs[1].0);
    assert_eq!(outs[0].1, outs[1].1);
    assert!(
        outs[1].2 > outs[0].2,
        "the 750 Ti should be slower than the K40c"
    );
}

#[test]
fn outputs_are_deterministic_across_parallel_schedules() {
    let n = 20_000;
    let data = keys_for(n, 6);
    let bucket = RangeBuckets::new(24);
    let run = |parallel: bool| {
        let dev = if parallel {
            Device::new(K40C)
        } else {
            Device::sequential(K40C)
        };
        let keys = GlobalBuffer::from_slice(&data);
        let r = multisplit_device(&dev, Method::BlockLevel, &keys, no_values(), n, &bucket, 8);
        let stats = dev
            .records()
            .iter()
            .fold(simt::BlockStats::default(), |mut a, rec| {
                a += rec.stats;
                a
            });
        (r.keys.to_vec(), stats)
    };
    let (out_p, stats_p) = run(true);
    let (out_s, stats_s) = run(false);
    assert_eq!(out_p, out_s, "data must not depend on host scheduling");
    assert_eq!(
        stats_p, stats_s,
        "counted events must not depend on host scheduling"
    );
}

#[test]
fn race_detector_passes_on_all_final_scatters() {
    // Rebuild each method's output into a tracked buffer by re-running the
    // permutation host-side; the scatter itself is validated by the
    // checked-offsets equality, so here we assert the multisplit *writes
    // each output slot exactly once* via output completeness.
    let dev = Device::new(K40C);
    let n = 3_000;
    let data = keys_for(n, 7);
    let keys = GlobalBuffer::from_slice(&data);
    let bucket = RangeBuckets::new(8);
    for method in [Method::Direct, Method::WarpLevel, Method::BlockLevel] {
        let r = multisplit_device(&dev, method, &keys, no_values(), n, &bucket, 8);
        let out = r.keys.to_vec();
        let mut a = out.clone();
        let mut b = data.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(
            a, b,
            "{method:?}: output is a permutation (no slot written twice or missed)"
        );
    }
}
