//! Randomized property tests on the core invariants:
//!
//! * every multisplit method produces the stable reference permutation for
//!   arbitrary keys, bucket counts, sizes and payload presence;
//! * the ballot-based warp algorithms match their scalar definitions for
//!   arbitrary bucket assignments and activity masks;
//! * the device scan/split/radix primitives match `std` folds/sorts.
//!
//! Originally written against `proptest`; this offline build drives the
//! same properties with seeded `msrng` loops instead (fixed seeds, so
//! failures reproduce deterministically).

use msrng::SmallRng;
use multisplit::{multisplit_device, multisplit_kv_ref, no_values, warp_ops, Method, RangeBuckets};
use simt::{lanes_from_fn, Device, GlobalBuffer, StatCells, WarpCtx, K40C};

const CASES: usize = 32;

fn rand_keys(rng: &mut SmallRng, max_len: usize) -> Vec<u32> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| rng.next_u32()).collect()
}

/// Self-contained reproducer line for a failing seeded case. Each suite
/// draws from a fixed seed, so `case` pins the exact inputs: re-run the
/// test with the loop skipped to `case` (or rebuild the inputs from the
/// printed parameters) to replay the failure without bisecting the RNG
/// stream.
fn repro(suite_seed: u64, case: usize, params: String) -> String {
    format!("repro: suite_seed={suite_seed:#x} case_index={case} {params}")
}

#[test]
fn multisplit_methods_match_reference() {
    const SEED: u64 = 0x51ca_0001;
    let mut rng = SmallRng::seed_from_u64(SEED);
    for case in 0..CASES {
        let keys = rand_keys(&mut rng, 3000);
        let m = rng.gen_range(1u32..=32);
        let method = [
            Method::Direct,
            Method::WarpLevel,
            Method::BlockLevel,
            Method::Fused,
        ][rng.gen_range(0usize..4)];
        let wpb = [2usize, 4, 8][rng.gen_range(0usize..3)];
        let ctx = repro(
            SEED,
            case,
            format!("n={} m={m} method={method:?} wpb={wpb}", keys.len()),
        );
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let r = multisplit_device(&dev, method, &buf, no_values(), keys.len(), &bucket, wpb);
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        assert_eq!(r.keys.to_vec(), ek, "{ctx}");
        assert_eq!(r.offsets, eo, "{ctx}");
    }
}

#[test]
fn multisplit_kv_matches_reference() {
    const SEED: u64 = 0x51ca_0002;
    let mut rng = SmallRng::seed_from_u64(SEED);
    for case in 0..CASES {
        let keys = rand_keys(&mut rng, 2000);
        let m = rng.gen_range(1u32..=32);
        let method = [
            Method::Direct,
            Method::WarpLevel,
            Method::BlockLevel,
            Method::Fused,
        ][rng.gen_range(0usize..4)];
        let ctx = repro(
            SEED,
            case,
            format!("n={} m={m} method={method:?} wpb=8 kv", keys.len()),
        );
        let values: Vec<u32> = (0..keys.len() as u32).collect();
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let kbuf = GlobalBuffer::from_slice(&keys);
        let vbuf = GlobalBuffer::from_slice(&values);
        let r = multisplit_device(&dev, method, &kbuf, Some(&vbuf), keys.len(), &bucket, 8);
        let (ek, ev, _) = multisplit_kv_ref(&keys, Some(&values), &bucket);
        assert_eq!(r.keys.to_vec(), ek, "{ctx}");
        assert_eq!(r.values.unwrap().to_vec(), ev, "{ctx}");
    }
}

#[test]
fn fused_matches_reference_and_three_kernel_for_every_m() {
    // The fused path's correctness sweep (ISSUE 2): bit-identical to the
    // CPU reference AND the three-kernel pipeline for every m in 1..=32,
    // key-only and key-value, including a partial final tile (the fused
    // tile is wpb*32*ipt = 2048 elements at wpb=8, so n = 5000 ends on a
    // ragged tile). The fused output buffers carry the simulator's
    // write-race detector (`tracked()`): any double-write panics here.
    let mut rng = SmallRng::seed_from_u64(0x51ca_000b);
    for m in 1u32..=32 {
        let keys = rand_keys(&mut rng, 5000);
        let values: Vec<u32> = (0..keys.len() as u32).collect();
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let kbuf = GlobalBuffer::from_slice(&keys);
        let vbuf = GlobalBuffer::from_slice(&values);
        let n = keys.len();
        let f = multisplit_device(&dev, Method::Fused, &kbuf, no_values(), n, &bucket, 8);
        let b = multisplit_device(&dev, Method::BlockLevel, &kbuf, no_values(), n, &bucket, 8);
        let (ek, ev, eo) = multisplit_kv_ref(&keys, Some(&values), &bucket);
        assert_eq!(f.keys.to_vec(), ek, "m={m} n={n} vs reference");
        assert_eq!(f.offsets, eo, "m={m} n={n}");
        assert_eq!(f.keys.to_vec(), b.keys.to_vec(), "m={m} vs three-kernel");
        assert_eq!(f.offsets, b.offsets, "m={m} vs three-kernel");
        let fkv = multisplit_device(&dev, Method::Fused, &kbuf, Some(&vbuf), n, &bucket, 8);
        assert_eq!(fkv.keys.to_vec(), ek, "kv m={m}");
        assert_eq!(fkv.values.unwrap().to_vec(), ev, "kv m={m}");
    }
}

#[test]
fn fused_edge_cases() {
    let dev = Device::new(K40C);
    let bucket = RangeBuckets::new(8);
    // Zero-length input: no launches, all-zero offsets.
    let empty = GlobalBuffer::<u32>::zeroed(0);
    let r = multisplit_device(&dev, Method::Fused, &empty, no_values(), 0, &bucket, 8);
    assert_eq!(r.offsets, vec![0; 9]);
    assert!(dev.records().is_empty());
    // Single-bucket input is the identity permutation (stability).
    let keys: Vec<u32> = (0..3000u32)
        .map(|i| i.wrapping_mul(2654435761) % 512)
        .collect();
    let one = multisplit::FnBuckets::new(4, |_| 2);
    let buf = GlobalBuffer::from_slice(&keys);
    let r = multisplit_device(&dev, Method::Fused, &buf, no_values(), keys.len(), &one, 8);
    assert_eq!(r.keys.to_vec(), keys);
    assert_eq!(r.offsets, vec![0, 0, 0, 3000, 3000]);
}

#[test]
fn large_m_matches_reference() {
    const SEED: u64 = 0x51ca_0003;
    let mut rng = SmallRng::seed_from_u64(SEED);
    for case in 0..CASES {
        let keys = rand_keys(&mut rng, 2000);
        let m = rng.gen_range(33u32..=512);
        let ctx = repro(
            SEED,
            case,
            format!("n={} m={m} method=LargeM wpb=8", keys.len()),
        );
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let r = multisplit_device(
            &dev,
            Method::LargeM,
            &buf,
            no_values(),
            keys.len(),
            &bucket,
            8,
        );
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        assert_eq!(r.keys.to_vec(), ek, "{ctx}");
        assert_eq!(r.offsets, eo, "{ctx}");
    }
}

#[test]
fn fused_large_m_matches_reference_and_three_kernel() {
    // The fused large-m path's correctness sweep (ISSUE 4, satellite 2):
    // bit-identical to the CPU reference AND the three-kernel large-m
    // pipeline, key-only and key-value, for bucket counts spanning the
    // supported range up to the exact shared-memory capacity boundary
    // (`fused_max_buckets`). Random lengths end on ragged tiles at every
    // coarsening factor. The fused output buffers carry the simulator's
    // write-race detector (`tracked()`): any double-write panics here.
    let mut rng = SmallRng::seed_from_u64(0x51ca_000c);
    for kv in [false, true] {
        let cap = multisplit::fused_max_buckets(8, kv);
        for m in [33u32, 64, 100, 256, cap] {
            let keys = rand_keys(&mut rng, 6000);
            let n = keys.len();
            let values: Vec<u32> = (0..n as u32).collect();
            let bucket = RangeBuckets::new(m);
            let dev = Device::new(K40C);
            let kbuf = GlobalBuffer::from_slice(&keys);
            let vbuf = GlobalBuffer::from_slice(&values);
            let vals = kv.then_some(&vbuf);
            let f = multisplit_device(&dev, Method::FusedLargeM, &kbuf, vals, n, &bucket, 8);
            let t = multisplit_device(&dev, Method::LargeM, &kbuf, vals, n, &bucket, 8);
            let (ek, ev, eo) = multisplit_kv_ref(&keys, kv.then_some(&values), &bucket);
            assert_eq!(f.keys.to_vec(), ek, "kv={kv} m={m} n={n} vs reference");
            assert_eq!(f.offsets, eo, "kv={kv} m={m} n={n}");
            assert_eq!(
                f.keys.to_vec(),
                t.keys.to_vec(),
                "kv={kv} m={m} vs three-kernel"
            );
            assert_eq!(f.offsets, t.offsets, "kv={kv} m={m} vs three-kernel");
            if kv {
                let fv = f.values.unwrap().to_vec();
                assert_eq!(fv, ev, "m={m} n={n} values vs reference");
                assert_eq!(
                    fv,
                    t.values.unwrap().to_vec(),
                    "m={m} values vs three-kernel"
                );
            }
        }
    }
}

#[test]
fn fused_large_m_edge_cases() {
    let dev = Device::new(K40C);
    let bucket = RangeBuckets::new(80);
    // Zero-length input: no launches, all-zero offsets.
    let empty = GlobalBuffer::<u32>::zeroed(0);
    let r = multisplit_device(
        &dev,
        Method::FusedLargeM,
        &empty,
        no_values(),
        0,
        &bucket,
        8,
    );
    assert_eq!(r.offsets, vec![0; 81]);
    assert!(dev.records().is_empty());
    // Tiny and one-past-a-tile lengths against the reference.
    for n in [1usize, 2049] {
        let keys: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let buf = GlobalBuffer::from_slice(&keys);
        let r = multisplit_device(&dev, Method::FusedLargeM, &buf, no_values(), n, &bucket, 8);
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        assert_eq!(r.keys.to_vec(), ek, "n={n}");
        assert_eq!(r.offsets, eo, "n={n}");
    }
    // All-one-bucket skew: the output is the identity permutation
    // (stability) and every element lands in bucket 40.
    let keys: Vec<u32> = (0..5000u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let one = multisplit::FnBuckets::new(64, |_| 40);
    let buf = GlobalBuffer::from_slice(&keys);
    let r = multisplit_device(
        &dev,
        Method::FusedLargeM,
        &buf,
        no_values(),
        keys.len(),
        &one,
        8,
    );
    assert_eq!(r.keys.to_vec(), keys);
    let expect: Vec<u32> = (0..=64).map(|b| if b <= 40 { 0 } else { 5000 }).collect();
    assert_eq!(r.offsets, expect);
}

#[test]
fn warp_histogram_and_offsets_match_scalar_definitions() {
    let mut rng = SmallRng::seed_from_u64(0x51ca_0004);
    for _ in 0..CASES * 4 {
        let m = rng.gen_range(1u32..=32);
        let mask = rng.next_u32();
        let bucket_vals: Vec<u32> = (0..32).map(|_| rng.next_u32()).collect();
        let b = lanes_from_fn(|l| bucket_vals[l] % m);
        let st = StatCells::default();
        let w = WarpCtx::new(0, 0, &st);
        let h = warp_ops::warp_histogram(&w, b, m, mask);
        let o = warp_ops::warp_offsets(&w, b, m, mask);
        let (fh, fo) = warp_ops::warp_histogram_and_offsets(&w, b, m, mask);
        assert_eq!(h, fh);
        assert_eq!(o, fo);
        for lane in 0..32usize {
            if lane < m as usize {
                let expect = (0..32)
                    .filter(|&p| mask >> p & 1 == 1 && b[p] == lane as u32)
                    .count() as u32;
                assert_eq!(h[lane], expect, "histogram lane {lane}");
            } else {
                assert_eq!(h[lane], 0u32, "aliased lane {lane} must read zero");
            }
            if mask >> lane & 1 == 1 {
                let expect = (0..lane)
                    .filter(|&p| mask >> p & 1 == 1 && b[p] == b[lane])
                    .count() as u32;
                assert_eq!(o[lane], expect, "offset lane {lane}");
            }
        }
    }
}

#[test]
fn alternative_implementations_match_reference() {
    let mut rng = SmallRng::seed_from_u64(0x51ca_0005);
    for case in 0..CASES {
        // The related-work contenders must also be exactly stable.
        let keys = rand_keys(&mut rng, 1500);
        let m = rng.gen_range(1u32..=32);
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        let r = if case % 2 == 0 {
            baselines::multisplit_thread_level(&dev, &buf, no_values(), keys.len(), &bucket, 8)
        } else {
            baselines::multisplit_block_atomic(&dev, &buf, no_values(), keys.len(), &bucket, 8)
        };
        assert_eq!(
            r.keys.to_vec(),
            ek,
            "which={} m={m} n={}",
            case % 2,
            keys.len()
        );
        assert_eq!(r.offsets, eo);
    }
}

#[test]
fn reduced_bit_matches_reference() {
    const SEED: u64 = 0x51ca_0006;
    let mut rng = SmallRng::seed_from_u64(SEED);
    for case in 0..CASES {
        let keys = rand_keys(&mut rng, 1500);
        let m = rng.gen_range(1u32..=256);
        let ctx = repro(
            SEED,
            case,
            format!("n={} m={m} method=reduced-bit wpb=8", keys.len()),
        );
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let (out, offs) = baselines::reduced_bit_multisplit(&dev, &buf, keys.len(), &bucket, 8);
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        assert_eq!(out.to_vec(), ek, "{ctx}");
        assert_eq!(offs, eo, "{ctx}");
    }
}

#[test]
fn device_scan_matches_fold() {
    let mut rng = SmallRng::seed_from_u64(0x51ca_0007);
    for case in 0..CASES {
        let len = rng.gen_range(0usize..5000);
        let vals: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..1000)).collect();
        let wpb = [2usize, 8][case % 2];
        let dev = Device::new(K40C);
        let input = GlobalBuffer::from_slice(&vals);
        let output = GlobalBuffer::<u32>::zeroed(vals.len());
        let total = primitives::exclusive_scan_u32(&dev, "p", &input, &output, vals.len(), wpb);
        let mut run = 0u32;
        let expect: Vec<u32> = vals
            .iter()
            .map(|&v| {
                let r = run;
                run += v;
                r
            })
            .collect();
        assert_eq!(output.to_vec(), expect, "wpb={wpb} n={len}");
        assert_eq!(total, run);
    }
}

#[test]
fn radix_sort_matches_std_sort() {
    let mut rng = SmallRng::seed_from_u64(0x51ca_0008);
    for _ in 0..CASES {
        let keys = rand_keys(&mut rng, 3000);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let (sorted, _) = baselines::radix_sort(&dev, "p", &buf, no_values(), keys.len(), 8);
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(sorted.to_vec(), expect);
    }
}

#[test]
fn split_partitions_stably() {
    let mut rng = SmallRng::seed_from_u64(0x51ca_0009);
    for _ in 0..CASES {
        let keys = rand_keys(&mut rng, 3000);
        let pivot = rng.next_u32();
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let r =
            primitives::split_by_pred(&dev, "p", &buf, None, keys.len(), 8, move |k| k >= pivot);
        let out = r.keys.to_vec();
        let lo: Vec<u32> = keys.iter().copied().filter(|&k| k < pivot).collect();
        let hi: Vec<u32> = keys.iter().copied().filter(|&k| k >= pivot).collect();
        assert_eq!(r.false_count as usize, lo.len());
        assert_eq!(&out[..lo.len()], &lo[..]);
        assert_eq!(&out[lo.len()..], &hi[..]);
    }
}

#[test]
fn randomized_multisplit_is_always_valid() {
    let mut rng = SmallRng::seed_from_u64(0x51ca_000a);
    for _ in 0..CASES {
        let keys = rand_keys(&mut rng, 1500);
        let m = rng.gen_range(1u32..=64);
        let x_tenths = rng.gen_range(12u32..40);
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let cfg = baselines::RandomizedConfig {
            relaxation: x_tenths as f64 / 10.0,
            ..Default::default()
        };
        let (out, offs) = baselines::randomized_multisplit(&dev, &buf, keys.len(), &bucket, cfg);
        assert!(multisplit::check_multisplit(&keys, &out.to_vec(), &offs, &bucket).is_ok());
    }
}
