//! Property-based tests (proptest) on the core invariants:
//!
//! * every multisplit method produces the stable reference permutation for
//!   arbitrary keys, bucket counts, sizes and payload presence;
//! * the ballot-based warp algorithms match their scalar definitions for
//!   arbitrary bucket assignments and activity masks;
//! * the device scan/split/radix primitives match `std` folds/sorts.

use proptest::prelude::*;

use multisplit::{
    multisplit_device, multisplit_kv_ref, no_values, warp_ops, Method, RangeBuckets,
};
use simt::{lanes_from_fn, Device, GlobalBuffer, StatCells, WarpCtx, K40C};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn multisplit_methods_match_reference(
        keys in prop::collection::vec(any::<u32>(), 1..3000),
        m in 1u32..=32,
        method_ix in 0usize..3,
        wpb in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        let method = [Method::Direct, Method::WarpLevel, Method::BlockLevel][method_ix];
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let r = multisplit_device(&dev, method, &buf, no_values(), keys.len(), &bucket, wpb);
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        prop_assert_eq!(r.keys.to_vec(), ek);
        prop_assert_eq!(r.offsets, eo);
    }

    #[test]
    fn multisplit_kv_matches_reference(
        keys in prop::collection::vec(any::<u32>(), 1..2000),
        m in 1u32..=32,
        method_ix in 0usize..3,
    ) {
        let method = [Method::Direct, Method::WarpLevel, Method::BlockLevel][method_ix];
        let values: Vec<u32> = (0..keys.len() as u32).collect();
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let kbuf = GlobalBuffer::from_slice(&keys);
        let vbuf = GlobalBuffer::from_slice(&values);
        let r = multisplit_device(&dev, method, &kbuf, Some(&vbuf), keys.len(), &bucket, 8);
        let (ek, ev, _) = multisplit_kv_ref(&keys, Some(&values), &bucket);
        prop_assert_eq!(r.keys.to_vec(), ek);
        prop_assert_eq!(r.values.unwrap().to_vec(), ev);
    }

    #[test]
    fn large_m_matches_reference(
        keys in prop::collection::vec(any::<u32>(), 1..2000),
        m in 33u32..=512,
    ) {
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let r = multisplit_device(&dev, Method::LargeM, &buf, no_values(), keys.len(), &bucket, 8);
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        prop_assert_eq!(r.keys.to_vec(), ek);
        prop_assert_eq!(r.offsets, eo);
    }

    #[test]
    fn warp_histogram_and_offsets_match_scalar_definitions(
        bucket_vals in prop::array::uniform32(any::<u32>()),
        m in 1u32..=32,
        mask in any::<u32>(),
    ) {
        let b = lanes_from_fn(|l| bucket_vals[l] % m);
        let st = StatCells::default();
        let w = WarpCtx::new(0, 0, &st);
        let h = warp_ops::warp_histogram(&w, b, m, mask);
        let o = warp_ops::warp_offsets(&w, b, m, mask);
        let (fh, fo) = warp_ops::warp_histogram_and_offsets(&w, b, m, mask);
        prop_assert_eq!(h, fh);
        prop_assert_eq!(o, fo);
        for lane in 0..32usize {
            if lane < m as usize {
                let expect = (0..32)
                    .filter(|&p| mask >> p & 1 == 1 && b[p] == lane as u32)
                    .count() as u32;
                prop_assert_eq!(h[lane], expect, "histogram lane {}", lane);
            } else {
                prop_assert_eq!(h[lane], 0u32, "aliased lane {} must read zero", lane);
            }
            if mask >> lane & 1 == 1 {
                let expect = (0..lane)
                    .filter(|&p| mask >> p & 1 == 1 && b[p] == b[lane])
                    .count() as u32;
                prop_assert_eq!(o[lane], expect, "offset lane {}", lane);
            }
        }
    }

    #[test]
    fn alternative_implementations_match_reference(
        keys in prop::collection::vec(any::<u32>(), 1..1500),
        m in 1u32..=32,
        which in 0usize..2,
    ) {
        // The related-work contenders must also be exactly stable.
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        let r = if which == 0 {
            baselines::multisplit_thread_level(&dev, &buf, no_values(), keys.len(), &bucket, 8)
        } else {
            baselines::multisplit_block_atomic(&dev, &buf, no_values(), keys.len(), &bucket, 8)
        };
        prop_assert_eq!(r.keys.to_vec(), ek);
        prop_assert_eq!(r.offsets, eo);
    }

    #[test]
    fn reduced_bit_matches_reference(
        keys in prop::collection::vec(any::<u32>(), 1..1500),
        m in 1u32..=256,
    ) {
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let (out, offs) = baselines::reduced_bit_multisplit(&dev, &buf, keys.len(), &bucket, 8);
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        prop_assert_eq!(out.to_vec(), ek);
        prop_assert_eq!(offs, eo);
    }

    #[test]
    fn device_scan_matches_fold(
        vals in prop::collection::vec(0u32..1000, 0..5000),
        wpb in prop::sample::select(vec![2usize, 8]),
    ) {
        let dev = Device::new(K40C);
        let input = GlobalBuffer::from_slice(&vals);
        let output = GlobalBuffer::<u32>::zeroed(vals.len());
        let total = primitives::exclusive_scan_u32(&dev, "p", &input, &output, vals.len(), wpb);
        let mut run = 0u32;
        let expect: Vec<u32> = vals.iter().map(|&v| { let r = run; run += v; r }).collect();
        prop_assert_eq!(output.to_vec(), expect);
        prop_assert_eq!(total, run);
    }

    #[test]
    fn radix_sort_matches_std_sort(
        keys in prop::collection::vec(any::<u32>(), 1..3000),
    ) {
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let (sorted, _) = baselines::radix_sort(&dev, "p", &buf, no_values(), keys.len(), 8);
        let mut expect = keys;
        expect.sort_unstable();
        prop_assert_eq!(sorted.to_vec(), expect);
    }

    #[test]
    fn split_partitions_stably(
        keys in prop::collection::vec(any::<u32>(), 1..3000),
        pivot in any::<u32>(),
    ) {
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let r = primitives::split_by_pred(&dev, "p", &buf, None, keys.len(), 8, move |k| k >= pivot);
        let out = r.keys.to_vec();
        let lo: Vec<u32> = keys.iter().copied().filter(|&k| k < pivot).collect();
        let hi: Vec<u32> = keys.iter().copied().filter(|&k| k >= pivot).collect();
        prop_assert_eq!(r.false_count as usize, lo.len());
        prop_assert_eq!(&out[..lo.len()], &lo[..]);
        prop_assert_eq!(&out[lo.len()..], &hi[..]);
    }

    #[test]
    fn randomized_multisplit_is_always_valid(
        keys in prop::collection::vec(any::<u32>(), 1..1500),
        m in 1u32..=64,
        x_tenths in 12u32..40,
    ) {
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let cfg = baselines::RandomizedConfig { relaxation: x_tenths as f64 / 10.0, ..Default::default() };
        let (out, offs) = baselines::randomized_multisplit(&dev, &buf, keys.len(), &bucket, cfg);
        prop_assert!(multisplit::check_multisplit(&keys, &out.to_vec(), &offs, &bucket).is_ok());
    }
}
