//! Segmented-multisplit edge cases (PR 9 satellite): zero segments, an
//! empty segment mid-batch, n = 1 segments, heterogeneous m across
//! segments, and a segment past the fused shared-memory capacity that
//! must fall back to standalone launches — every batch checked against
//! per-segment reference runs, bit-identically, on the parallel,
//! sequential, and adversarial schedulers.

use multisplit::{
    fused_max_buckets, multisplit_ref, no_values, FnBuckets, Method, RangeBuckets, SegmentSpec,
};
use simt::{AdvSchedule, Device, GlobalBuffer, K40C};

fn keys_for(n: usize, seed: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761).wrapping_add(seed))
        .collect()
}

/// Pack (n, m) segments into one flat buffer at sector-aligned offsets.
fn pack(parts: &[(usize, u32)]) -> (Vec<u32>, Vec<(usize, usize)>) {
    let mut flat = Vec::new();
    let mut ranges = Vec::new();
    for (i, &(n, _)) in parts.iter().enumerate() {
        let off = flat.len();
        flat.extend(keys_for(n, i as u32));
        ranges.push((off, n));
        let pad = (8 - flat.len() % 8) % 8;
        flat.resize(flat.len() + pad, 0);
    }
    (flat, ranges)
}

fn devices() -> Vec<Device> {
    vec![
        Device::new(K40C),
        Device::sequential(K40C),
        Device::adversarial(K40C, AdvSchedule::from_seed(17)),
    ]
}

/// Run the batch on every scheduler and check each segment against its
/// own CPU reference; all schedulers must produce bit-identical output.
fn check_all_schedulers(parts: &[(usize, u32)]) {
    let (flat, ranges) = pack(parts);
    let buckets: Vec<RangeBuckets> = parts.iter().map(|&(_, m)| RangeBuckets::new(m)).collect();
    let specs: Vec<SegmentSpec> = ranges
        .iter()
        .zip(&buckets)
        .map(|(&(offset, n), b)| SegmentSpec {
            offset,
            n,
            bucket: b,
        })
        .collect();
    let mut outs: Vec<(Vec<u32>, Vec<Vec<u32>>)> = Vec::new();
    for dev in devices() {
        let keys = GlobalBuffer::from_slice(&flat);
        let r = multisplit::multisplit_segmented(&dev, &keys, no_values(), &specs, 8);
        outs.push((r.keys.to_vec(), r.offsets));
    }
    let (out, offsets) = &outs[0];
    for (i, (&(off, n), b)) in ranges.iter().zip(&buckets).enumerate() {
        let (expect, expect_offs) = multisplit_ref(&flat[off..off + n], b);
        assert_eq!(&out[off..off + n], &expect[..], "segment {i}");
        assert_eq!(offsets[i], expect_offs, "segment {i} offsets");
    }
    assert_eq!(outs[0], outs[1], "parallel vs sequential");
    assert_eq!(outs[0], outs[2], "parallel vs adversarial");
}

#[test]
fn zero_segments_on_every_scheduler() {
    for dev in devices() {
        let keys = GlobalBuffer::from_slice(&[7u32; 16]);
        let r = multisplit::multisplit_segmented(&dev, &keys, no_values(), &[], 8);
        assert!(r.offsets.is_empty());
        assert!(dev.records().is_empty(), "no launches for an empty batch");
    }
}

#[test]
fn empty_segment_mid_batch() {
    // The middle segment has n = 0: all-zero offsets, no tiles, and it
    // must not perturb its neighbours' look-back windows.
    let parts = [(2048usize, 13u32), (0, 8), (3000, 32)];
    check_all_schedulers(&parts);
    // Its offsets really are m + 1 zeros.
    let (flat, ranges) = pack(&parts);
    let buckets: Vec<RangeBuckets> = parts.iter().map(|&(_, m)| RangeBuckets::new(m)).collect();
    let specs: Vec<SegmentSpec> = ranges
        .iter()
        .zip(&buckets)
        .map(|(&(offset, n), b)| SegmentSpec {
            offset,
            n,
            bucket: b,
        })
        .collect();
    let dev = Device::new(K40C);
    let keys = GlobalBuffer::from_slice(&flat);
    let r = multisplit::multisplit_segmented(&dev, &keys, no_values(), &specs, 8);
    assert_eq!(r.offsets[1], vec![0u32; 9]);
}

#[test]
fn single_element_segments() {
    // n = 1 segments interleaved with real ones: one-lane tiles, tail
    // masks of width 1, and a look-back chain of length 1 per segment.
    let parts = [
        (1usize, 4u32),
        (1, 32),
        (2500, 16),
        (1, 1),
        (1, 64),
        (900, 33),
    ];
    check_all_schedulers(&parts);
}

#[test]
fn heterogeneous_m_across_segments() {
    // Every class boundary in one batch: m = 1, the warp boundary 32/33,
    // and a large-m segment, with different tile counts per segment.
    let parts = [
        (4096usize, 1u32),
        (4096, 32),
        (4096, 33),
        (4096, 17),
        (4096, 256),
        (4096, 5),
    ];
    check_all_schedulers(&parts);
}

#[test]
fn oversized_m_segment_falls_back_to_standalone_launches() {
    // A segment past the fused large-m shared-memory capacity cannot run
    // inside the coalesced sweep; it must fall back to its own launches
    // (scoped `segmented/fallback/...`) while the rest of the batch still
    // coalesces — and the combined result must still match per-segment
    // references.
    let wpb = 8;
    let big_m = fused_max_buckets(wpb, false) + 1;
    assert_eq!(Method::auto_for_segmented(big_m, false, wpb), None);
    let parts = [(2048usize, 8u32), (3000, big_m), (2048, 40)];
    let (flat, ranges) = pack(&parts);
    let buckets: Vec<RangeBuckets> = parts.iter().map(|&(_, m)| RangeBuckets::new(m)).collect();
    let specs: Vec<SegmentSpec> = ranges
        .iter()
        .zip(&buckets)
        .map(|(&(offset, n), b)| SegmentSpec {
            offset,
            n,
            bucket: b,
        })
        .collect();
    let dev = Device::sequential(K40C);
    let keys = GlobalBuffer::from_slice(&flat);
    let r = multisplit::multisplit_segmented(&dev, &keys, no_values(), &specs, wpb);
    let out = r.keys.to_vec();
    for (i, (&(off, n), b)) in ranges.iter().zip(&buckets).enumerate() {
        let (expect, expect_offs) = multisplit_ref(&flat[off..off + n], b);
        assert_eq!(&out[off..off + n], &expect[..], "segment {i}");
        assert_eq!(r.offsets[i], expect_offs, "segment {i} offsets");
    }
    let labels: Vec<String> = dev.records().iter().map(|rec| rec.label.clone()).collect();
    assert!(
        labels
            .iter()
            .any(|l| l == "segmented/pre-scan[fused=1,largem=1]"),
        "the in-capacity segments still coalesce: {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.starts_with("segmented/fallback/")),
        "the oversized segment runs standalone under the fallback scope: {labels:?}"
    );
}

#[test]
fn structured_bucket_functions_per_segment() {
    // Each segment brings its own bucket *function*, not just its own m:
    // a skewed all-one-bucket segment next to a uniform one, bit-checked
    // on every scheduler.
    let skew = FnBuckets::new(8, |_| 5);
    let uniform = RangeBuckets::new(8);
    let n = 3000usize;
    let mut flat = keys_for(n, 1);
    flat.resize(2 * n, 0);
    flat[n..2 * n].copy_from_slice(&keys_for(n, 2));
    let specs = [
        SegmentSpec {
            offset: 0,
            n,
            bucket: &skew,
        },
        SegmentSpec {
            offset: n,
            n,
            bucket: &uniform,
        },
    ];
    let mut outs = Vec::new();
    for dev in devices() {
        let keys = GlobalBuffer::from_slice(&flat);
        let r = multisplit::multisplit_segmented(&dev, &keys, no_values(), &specs, 8);
        outs.push((r.keys.to_vec(), r.offsets));
    }
    let (skew_ref, skew_offs) = multisplit_ref(&flat[..n], &skew);
    let (uni_ref, uni_offs) = multisplit_ref(&flat[n..], &uniform);
    assert_eq!(&outs[0].0[..n], &skew_ref[..], "stability through the skew");
    assert_eq!(&outs[0].0[n..], &uni_ref[..]);
    assert_eq!(outs[0].1, vec![skew_offs, uni_offs]);
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[0], outs[2]);
}
