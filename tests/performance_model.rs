//! Model-level invariants: the paper's qualitative performance claims must
//! hold in the cost model (these are the claims the benchmark harness
//! quantifies; here they gate CI).

use msbench::{run_contender, run_scan_split, Contender, Distribution};
use simt::{GTX750TI, K40C};

const N: usize = 1 << 16;

fn time(c: Contender, kv: bool, m: u32) -> f64 {
    run_contender(c, kv, N, m, Distribution::Uniform, K40C, 8, 42, false).total
}

#[test]
fn every_multisplit_method_beats_radix_sort_for_small_m() {
    // Paper Table 6: all speedups > 1 for m <= 32.
    for kv in [false, true] {
        let radix = time(Contender::RadixSort, kv, 8);
        for c in [
            Contender::Direct,
            Contender::WarpLevel,
            Contender::BlockLevel,
            Contender::ReducedBit,
        ] {
            for m in [2u32, 8, 32] {
                let t = time(c, kv, m);
                assert!(
                    t < radix,
                    "{} m={m} kv={kv}: {t} !< radix {radix}",
                    c.name()
                );
            }
        }
    }
}

#[test]
fn warp_level_wins_at_two_buckets_block_level_wins_at_thirty_two() {
    // Paper §6.2: warp-level MS is fastest for small m; block-level for
    // large m (key-only crossovers at ~6 and ~22). Needs a realistic input
    // size — at tiny n kernel-launch overheads swamp the work and invert
    // the small-m ordering.
    let big = 1 << 20;
    let t = |c: Contender, m: u32| {
        run_contender(c, false, big, m, Distribution::Uniform, K40C, 8, 42, false).total
    };
    let w2 = t(Contender::WarpLevel, 2);
    let d2 = t(Contender::Direct, 2);
    assert!(
        w2 <= d2,
        "warp-level must beat direct at m=2: w={w2} d={d2}"
    );
    let w32 = t(Contender::WarpLevel, 32);
    let d32 = t(Contender::Direct, 32);
    let b32 = t(Contender::BlockLevel, 32);
    assert!(
        b32 <= w32 && b32 <= d32,
        "block-level must win at m=32: w={w32} d={d32} b={b32}"
    );
}

#[test]
fn multisplit_times_grow_with_bucket_count() {
    // Fig. 3: every method's uniform-distribution time is (weakly)
    // increasing in m over the 2..32 range.
    for c in [
        Contender::Direct,
        Contender::WarpLevel,
        Contender::BlockLevel,
    ] {
        let t2 = time(c, false, 2);
        let t32 = time(c, false, 32);
        assert!(
            t32 > t2,
            "{}: m=32 ({t32}) should cost more than m=2 ({t2})",
            c.name()
        );
    }
}

#[test]
fn reduced_bit_sort_scales_logarithmically_not_linearly() {
    // Fig. 4: reduced-bit sort depends on ceil(log m) while the block
    // method's histogram machinery scales with m.
    let r64 = time(Contender::ReducedBit, false, 64);
    let r1024 = run_contender(
        Contender::ReducedBit,
        false,
        N,
        1024,
        Distribution::Uniform,
        K40C,
        8,
        42,
        false,
    )
    .total;
    // log2: 6 bits -> 10 bits: at most ~2x, nowhere near 16x.
    assert!(
        r1024 < 2.5 * r64,
        "reduced-bit 1024 buckets {r1024} vs 64 buckets {r64}"
    );
}

#[test]
fn key_value_costs_more_than_key_only() {
    for c in [
        Contender::Direct,
        Contender::WarpLevel,
        Contender::BlockLevel,
        Contender::ReducedBit,
    ] {
        let k = time(c, false, 8);
        let kv = time(c, true, 8);
        assert!(kv > k, "{}: kv {kv} must exceed key-only {k}", c.name());
    }
}

#[test]
fn skewed_distributions_are_faster_than_uniform() {
    // Fig. 5: uniform is the worst case for the reordering methods.
    for dist in [Distribution::Binomial, Distribution::Skew75] {
        let u = run_contender(
            Contender::BlockLevel,
            false,
            N,
            16,
            Distribution::Uniform,
            K40C,
            8,
            7,
            false,
        );
        let s = run_contender(Contender::BlockLevel, false, N, 16, dist, K40C, 8, 7, false);
        assert!(
            s.total < u.total,
            "{}: skewed {:.4}ms should beat uniform {:.4}ms",
            dist.name(),
            s.total * 1e3,
            u.total * 1e3
        );
    }
}

#[test]
fn scan_split_beats_radix_at_two_buckets() {
    // Table 3's story: for 2 buckets a single split crushes a full sort.
    let split = run_scan_split(false, N, K40C, 8, 1).total;
    let radix = time(Contender::RadixSort, false, 2);
    assert!(
        split * 2.0 < radix,
        "split {split} should be far below radix {radix}"
    );
}

#[test]
fn randomized_insertion_loses_to_radix() {
    // §3.5's conclusion at its best setting x = 2. Evaluated at 4N: at
    // 2^16 keys radix's fixed per-pass launch overhead (7 passes) puts the
    // two within a few percent of each other, which is not the regime the
    // paper's asymptotic claim is about; from 2^17 up the gap is >= 1.5x
    // and widens with n.
    let n = 4 * N;
    let rand = run_contender(
        Contender::Randomized(2.0),
        false,
        n,
        8,
        Distribution::Uniform,
        K40C,
        8,
        42,
        false,
    )
    .total;
    let radix = run_contender(
        Contender::RadixSort,
        false,
        n,
        8,
        Distribution::Uniform,
        K40C,
        8,
        42,
        false,
    )
    .total;
    assert!(
        rand > radix,
        "randomized {rand} should lose to radix {radix}"
    );
}

#[test]
fn maxwell_is_slower_but_prefers_reordering_more() {
    // §6.3: same ordering, and the reordering methods gain more on the
    // 750 Ti relative to Direct MS.
    let m = 16u32;
    let k40_direct = time(Contender::Direct, false, m);
    let k40_block = time(Contender::BlockLevel, false, m);
    let max_direct = run_contender(
        Contender::Direct,
        false,
        N,
        m,
        Distribution::Uniform,
        GTX750TI,
        8,
        42,
        false,
    )
    .total;
    let max_block = run_contender(
        Contender::BlockLevel,
        false,
        N,
        m,
        Distribution::Uniform,
        GTX750TI,
        8,
        42,
        false,
    )
    .total;
    assert!(max_direct > k40_direct, "750 Ti must be slower overall");
    let k40_gain = k40_direct / k40_block;
    let max_gain = max_direct / max_block;
    assert!(
        max_gain > k40_gain,
        "reordering should pay off more on Maxwell: {max_gain:.2} vs {k40_gain:.2}"
    );
}

#[test]
fn speed_of_light_is_respected() {
    // No configuration may exceed the §6.2.2 bound.
    for kv in [false, true] {
        let light = K40C.speed_of_light_gkeys(kv);
        for c in [
            Contender::Direct,
            Contender::WarpLevel,
            Contender::BlockLevel,
        ] {
            for m in [2u32, 32] {
                let o = run_contender(c, kv, N, m, Distribution::Uniform, K40C, 8, 3, false);
                let rate = o.gkeys(N);
                assert!(
                    rate < light,
                    "{} m={m} kv={kv}: {rate} exceeds light {light}",
                    c.name()
                );
            }
        }
    }
}

#[test]
fn stage_breakdown_sums_to_total() {
    let o = run_contender(
        Contender::BlockLevel,
        false,
        N,
        16,
        Distribution::Uniform,
        K40C,
        8,
        5,
        false,
    );
    let sum: f64 = o.stages.iter().map(|(_, t)| t).sum();
    assert!(
        (sum - o.total).abs() < 1e-12,
        "stages {sum} != total {}",
        o.total
    );
}
