//! Cross-crate observability integration: per-block telemetry, look-back
//! introspection and structured JSON export, exercised end to end through
//! the public `multisplit` API and the bench harness.

use msbench::metrics::{profile_data, PROFILE_CONTENDERS, PROFILE_SEED};
use msbench::{run_contender, Distribution};
use multisplit::{multisplit_device, no_values, with_telemetry, Method, RangeBuckets, Telemetry};
use simt::{
    chrome_trace_json, launch_report, BlockStats, Device, GlobalBuffer, Json, LaunchRecord,
    ObsStats, K40C,
};

fn keys_for(n: usize, seed: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761).wrapping_add(seed * 97))
        .collect()
}

/// Run one multisplit method and hand back the device's launch log.
fn run_with(dev: &Device, method: Method, keys_host: &[u32], m: u32) -> Vec<LaunchRecord> {
    let keys = GlobalBuffer::from_slice(keys_host);
    let bucket = RangeBuckets::new(m);
    multisplit_device(dev, method, &keys, no_values(), keys_host.len(), &bucket, 8);
    dev.records()
}

fn summed_stats(records: &[LaunchRecord]) -> BlockStats {
    records.iter().fold(BlockStats::default(), |mut a, r| {
        a += r.stats;
        a
    })
}

fn summed_obs(records: &[LaunchRecord]) -> ObsStats {
    records.iter().fold(ObsStats::default(), |mut a, r| {
        a += r.obs;
        a
    })
}

/// A total order over every counted field, for schedule-independent
/// comparison of per-block vectors.
#[allow(clippy::type_complexity)]
fn stats_key(b: &BlockStats) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        b.sectors,
        b.useful_bytes,
        b.global_requests,
        b.replays,
        b.atomic_ops,
        b.atomic_conflicts,
        b.smem_ops,
        b.smem_bank_conflicts,
        b.intrinsics,
        b.lane_ops,
        b.barriers,
        b.divergent_iters,
    )
}

#[test]
fn per_block_stats_are_schedule_independent() {
    let n = 100_000;
    let keys_host = keys_for(n, 3);
    for (method, m) in [
        (Method::BlockLevel, 32),
        (Method::Fused, 32),
        (Method::FusedLargeM, 64),
    ] {
        let mut per_dev: Vec<(BlockStats, Vec<Vec<BlockStats>>)> = Vec::new();
        for dev in [Device::new(K40C), Device::sequential(K40C)] {
            let records = with_telemetry(Telemetry::PerBlock, || {
                run_with(&dev, method, &keys_host, m)
            });
            let mut per_block: Vec<Vec<BlockStats>> = Vec::new();
            for rec in &records {
                let blocks = rec
                    .per_block
                    .clone()
                    .expect("PerBlock telemetry retains per-block stats");
                // The retained vector is indexed by block id, so the sum
                // must reproduce the launch's counted stats exactly.
                assert_eq!(rec.stats, {
                    blocks.iter().fold(BlockStats::default(), |mut a, b| {
                        a += *b;
                        a
                    })
                });
                let mut sorted = blocks;
                sorted.sort_by_key(stats_key);
                per_block.push(sorted);
            }
            per_dev.push((summed_stats(&records), per_block));
        }
        assert_eq!(
            per_dev[0], per_dev[1],
            "{method:?}: parallel and sequential schedulers must agree on summed \
             stats and on the (sorted) per-block vectors"
        );
    }
}

#[test]
fn telemetry_knob_does_not_change_counted_stats() {
    let n = 65_536;
    let keys_host = keys_for(n, 5);
    let plain = {
        let dev = Device::sequential(K40C);
        run_with(&dev, Method::BlockLevel, &keys_host, 8)
    };
    let observed = with_telemetry(Telemetry::PerBlock, || {
        let dev = Device::sequential(K40C);
        run_with(&dev, Method::BlockLevel, &keys_host, 8)
    });
    assert_eq!(plain.len(), observed.len());
    for (a, b) in plain.iter().zip(&observed) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            a.stats, b.stats,
            "{}: telemetry must not change counting",
            a.label
        );
        assert_eq!(a.obs, b.obs);
        assert_eq!(a.seconds, b.seconds);
        assert!(a.per_block.is_none(), "Summary retains no per-block stats");
        assert!(b.per_block.is_some());
    }
}

#[test]
fn lookback_totals_are_schedule_independent_end_to_end() {
    let n = 1 << 18;
    let keys_host = keys_for(n, 9);
    // Block-level resolves look-backs in its chained scan; fused in its
    // sweep. Depth *distribution* varies with scheduling, but one resolve
    // fires per tile per 32-row group (one group for the m <= 32 paths,
    // ceil(m/32) for fused large-m), so totals must match across
    // schedulers.
    for (method, m) in [
        (Method::BlockLevel, 32),
        (Method::Fused, 32),
        (Method::FusedLargeM, 64),
    ] {
        let mut resolves = Vec::new();
        for dev in [Device::new(K40C), Device::sequential(K40C)] {
            let records = run_with(&dev, method, &keys_host, m);
            let obs = summed_obs(&records);
            assert!(obs.lookback_resolves > 0, "{method:?}: look-backs expected");
            assert_eq!(
                obs.depth_hist_total(),
                obs.lookback_resolves,
                "{method:?}: every resolve lands in exactly one histogram bucket"
            );
            resolves.push(obs.lookback_resolves);
        }
        assert_eq!(resolves[0], resolves[1], "{method:?}: resolve totals");
    }
}

#[test]
fn exported_json_round_trips_with_hostile_labels() {
    let n = 8_192;
    let keys_host = keys_for(n, 11);
    let dev = Device::new(K40C);
    let records = with_telemetry(Telemetry::PerBlock, || {
        dev.with_scope("we\"ird\\scope\t", || {
            run_with(&dev, Method::Fused, &keys_host, 8)
        })
    });
    assert!(records
        .iter()
        .all(|r| r.label.starts_with("we\"ird\\scope\t")));
    // Chrome trace: must parse as real JSON despite quotes, backslashes
    // and control characters in every label.
    let trace = chrome_trace_json(&records);
    Json::parse(&trace).expect("chrome trace must be valid JSON");
    // Metrics export: records, scope tree and derived launch reports all
    // round-trip, and no derived number is NaN or infinite.
    for doc in [
        simt::obs::records_json(&records),
        simt::scope_tree(&records).to_json(),
    ] {
        let text = doc.pretty();
        let reparsed = Json::parse(&text).expect("export must be valid JSON");
        assert_eq!(reparsed.render(), doc.render());
    }
    for rec in &records {
        let report = launch_report(rec, &K40C).expect("per-block stats retained");
        assert!(report.imbalance.is_finite() && report.imbalance >= 1.0);
        let text = report.to_json().pretty();
        Json::parse(&text).expect("launch report must be valid JSON");
    }
}

#[test]
fn profile_sector_totals_match_the_plain_reports() {
    let n = 1 << 14;
    let m = 32;
    // `paper profile` runs under PerBlock telemetry; the text reports run
    // without it. Totals and per-stage sector splits must agree exactly.
    let profiles = profile_data(n, m, true);
    for p in &profiles {
        let (c, _) = *PROFILE_CONTENDERS
            .iter()
            .find(|(_, name)| *name == p.name)
            .unwrap();
        let plain = run_contender(
            c,
            false,
            n,
            m,
            Distribution::Uniform,
            K40C,
            8,
            PROFILE_SEED,
            false,
        );
        assert_eq!(plain.sectors, p.outcome.sectors, "{}", p.name);
        assert_eq!(plain.total, p.outcome.total, "{}", p.name);
    }
}
