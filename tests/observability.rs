//! Cross-crate observability integration: per-block telemetry, look-back
//! introspection and structured JSON export, exercised end to end through
//! the public `multisplit` API and the bench harness.

use msbench::metrics::{profile_data, PROFILE_CONTENDERS, PROFILE_SEED};
use msbench::{run_contender, Distribution};
use multisplit::{multisplit_device, no_values, with_telemetry, Method, RangeBuckets, Telemetry};
use simt::{
    chrome_trace_json, launch_report, BlockStats, Device, GlobalBuffer, Json, LaunchRecord,
    ObsStats, K40C,
};

fn keys_for(n: usize, seed: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761).wrapping_add(seed * 97))
        .collect()
}

/// Run one multisplit method and hand back the device's launch log.
fn run_with(dev: &Device, method: Method, keys_host: &[u32], m: u32) -> Vec<LaunchRecord> {
    let keys = GlobalBuffer::from_slice(keys_host);
    let bucket = RangeBuckets::new(m);
    multisplit_device(dev, method, &keys, no_values(), keys_host.len(), &bucket, 8);
    dev.records()
}

fn summed_stats(records: &[LaunchRecord]) -> BlockStats {
    records.iter().fold(BlockStats::default(), |mut a, r| {
        a += r.stats;
        a
    })
}

fn summed_obs(records: &[LaunchRecord]) -> ObsStats {
    records.iter().fold(ObsStats::default(), |mut a, r| {
        a += r.obs;
        a
    })
}

/// A total order over every counted field, for schedule-independent
/// comparison of per-block vectors.
#[allow(clippy::type_complexity)]
fn stats_key(b: &BlockStats) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        b.sectors,
        b.useful_bytes,
        b.global_requests,
        b.replays,
        b.atomic_ops,
        b.atomic_conflicts,
        b.smem_ops,
        b.smem_bank_conflicts,
        b.intrinsics,
        b.lane_ops,
        b.barriers,
        b.divergent_iters,
    )
}

#[test]
fn per_block_stats_are_schedule_independent() {
    let n = 100_000;
    let keys_host = keys_for(n, 3);
    for (method, m) in [
        (Method::BlockLevel, 32),
        (Method::Fused, 32),
        (Method::FusedLargeM, 64),
    ] {
        let mut per_dev: Vec<(BlockStats, Vec<Vec<BlockStats>>)> = Vec::new();
        for dev in [Device::new(K40C), Device::sequential(K40C)] {
            let records = with_telemetry(Telemetry::PerBlock, || {
                run_with(&dev, method, &keys_host, m)
            });
            let mut per_block: Vec<Vec<BlockStats>> = Vec::new();
            for rec in &records {
                let blocks = rec
                    .per_block
                    .clone()
                    .expect("PerBlock telemetry retains per-block stats");
                // The retained vector is indexed by block id, so the sum
                // must reproduce the launch's counted stats exactly.
                assert_eq!(rec.stats, {
                    blocks.iter().fold(BlockStats::default(), |mut a, b| {
                        a += *b;
                        a
                    })
                });
                let mut sorted = blocks;
                sorted.sort_by_key(stats_key);
                per_block.push(sorted);
            }
            per_dev.push((summed_stats(&records), per_block));
        }
        assert_eq!(
            per_dev[0], per_dev[1],
            "{method:?}: parallel and sequential schedulers must agree on summed \
             stats and on the (sorted) per-block vectors"
        );
    }
}

#[test]
fn telemetry_knob_does_not_change_counted_stats() {
    let n = 65_536;
    let keys_host = keys_for(n, 5);
    let plain = {
        let dev = Device::sequential(K40C);
        run_with(&dev, Method::BlockLevel, &keys_host, 8)
    };
    let observed = with_telemetry(Telemetry::PerBlock, || {
        let dev = Device::sequential(K40C);
        run_with(&dev, Method::BlockLevel, &keys_host, 8)
    });
    assert_eq!(plain.len(), observed.len());
    for (a, b) in plain.iter().zip(&observed) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            a.stats, b.stats,
            "{}: telemetry must not change counting",
            a.label
        );
        assert_eq!(a.obs, b.obs);
        assert_eq!(a.seconds, b.seconds);
        assert!(a.per_block.is_none(), "Summary retains no per-block stats");
        assert!(b.per_block.is_some());
    }
}

#[test]
fn lookback_totals_are_schedule_independent_end_to_end() {
    let n = 1 << 18;
    let keys_host = keys_for(n, 9);
    // Block-level resolves look-backs in its chained scan; fused in its
    // sweep. Depth *distribution* varies with scheduling, but one resolve
    // fires per tile per 32-row group (one group for the m <= 32 paths,
    // ceil(m/32) for fused large-m), so totals must match across
    // schedulers.
    for (method, m) in [
        (Method::BlockLevel, 32),
        (Method::Fused, 32),
        (Method::FusedLargeM, 64),
    ] {
        let mut resolves = Vec::new();
        for dev in [Device::new(K40C), Device::sequential(K40C)] {
            let records = run_with(&dev, method, &keys_host, m);
            let obs = summed_obs(&records);
            assert!(obs.lookback_resolves > 0, "{method:?}: look-backs expected");
            assert_eq!(
                obs.depth_hist_total(),
                obs.lookback_resolves,
                "{method:?}: every resolve lands in exactly one histogram bucket"
            );
            resolves.push(obs.lookback_resolves);
        }
        assert_eq!(resolves[0], resolves[1], "{method:?}: resolve totals");
    }
}

#[test]
fn exported_json_round_trips_with_hostile_labels() {
    let n = 8_192;
    let keys_host = keys_for(n, 11);
    let dev = Device::new(K40C);
    let records = with_telemetry(Telemetry::PerBlock, || {
        dev.with_scope("we\"ird\\scope\t", || {
            run_with(&dev, Method::Fused, &keys_host, 8)
        })
    });
    assert!(records
        .iter()
        .all(|r| r.label.starts_with("we\"ird\\scope\t")));
    // Chrome trace: must parse as real JSON despite quotes, backslashes
    // and control characters in every label.
    let trace = chrome_trace_json(&records);
    Json::parse(&trace).expect("chrome trace must be valid JSON");
    // Metrics export: records, scope tree and derived launch reports all
    // round-trip, and no derived number is NaN or infinite.
    for doc in [
        simt::obs::records_json(&records),
        simt::scope_tree(&records).to_json(),
    ] {
        let text = doc.pretty();
        let reparsed = Json::parse(&text).expect("export must be valid JSON");
        assert_eq!(reparsed.render(), doc.render());
    }
    for rec in &records {
        let report = launch_report(rec, &K40C).expect("per-block stats retained");
        assert!(report.imbalance.is_finite() && report.imbalance >= 1.0);
        let text = report.to_json().pretty();
        Json::parse(&text).expect("launch report must be valid JSON");
    }
}

#[test]
fn profile_sector_totals_match_the_plain_reports() {
    let n = 1 << 14;
    let m = 32;
    // `paper profile` runs under PerBlock telemetry; the text reports run
    // without it. Totals and per-stage sector splits must agree exactly.
    let profiles = profile_data(n, m, true);
    for p in &profiles {
        let (c, _) = *PROFILE_CONTENDERS
            .iter()
            .find(|(_, name)| *name == p.name)
            .unwrap();
        let plain = run_contender(
            c,
            false,
            n,
            m,
            Distribution::Uniform,
            K40C,
            8,
            PROFILE_SEED,
            false,
        );
        assert_eq!(plain.sectors, p.outcome.sectors, "{}", p.name);
        assert_eq!(plain.total, p.outcome.total, "{}", p.name);
    }
}

// ====================== PR 8: flight recorder ======================

/// Satellite 3: the empty-launch guards. `mean_depth` on a fresh
/// `ObsStats` and `launch_report` on degenerate records must not divide
/// by zero.
#[test]
fn empty_launch_guards_hold() {
    assert_eq!(ObsStats::default().mean_depth(), 0.0);
    let rec = |per_block: Option<Vec<BlockStats>>| LaunchRecord {
        label: "empty/launch".into(),
        blocks: 0,
        warps_per_block: 8,
        stats: BlockStats::default(),
        obs: ObsStats::default(),
        per_block,
        flight: None,
        seconds: 0.0,
        stream: simt::HOST_STREAM,
        stream_seq: 0,
    };
    // No per-block stats retained: no report rather than a crash.
    assert!(launch_report(&rec(None), &K40C).is_none());
    // Zero-block launch under PerBlock telemetry: an empty vector.
    assert!(launch_report(&rec(Some(Vec::new())), &K40C).is_none());
    // All-idle blocks: mean estimate may round to zero; imbalance must
    // stay finite (the guard pins it at 1.0, never NaN/inf).
    let idle = rec(Some(vec![BlockStats::default(); 4]));
    if let Some(report) = launch_report(&idle, &K40C) {
        assert!(report.imbalance.is_finite());
        assert!(report.critical_path_seconds.is_finite());
    }
    // flight analysis shares the guards.
    assert!(simt::flight_analyze(&rec(None), &K40C).is_none());
    assert!(simt::flight_analyze(&rec(Some(Vec::new())), &K40C).is_none());
}

/// Recorder events ride the uncounted channel: counted stats (and the
/// modeled time derived from them) are bit-identical with the recorder
/// armed at its default capacity and fully disabled.
#[test]
fn recorder_does_not_change_counted_stats() {
    let n = 65_536;
    let keys_host = keys_for(n, 21);
    let on = {
        let dev = Device::sequential(K40C);
        run_with(&dev, Method::Fused, &keys_host, 32)
    };
    let off = simt::with_flight_capacity(0, || {
        let dev = Device::sequential(K40C);
        run_with(&dev, Method::Fused, &keys_host, 32)
    });
    assert_eq!(on.len(), off.len());
    for (a, b) in on.iter().zip(&off) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            a.stats, b.stats,
            "{}: recorder must not change counts",
            a.label
        );
        assert_eq!(a.obs, b.obs);
        assert_eq!(a.seconds, b.seconds);
        assert!(a.flight.is_some(), "{}: recorder on by default", a.label);
        assert!(b.flight.is_none(), "{}: capacity 0 disables", a.label);
    }
}

/// Event *counts* per kind are a deterministic function of the work, not
/// the schedule: sequential, parallel, and all four adversarial flavors
/// agree per launch label.
#[test]
fn event_counts_are_schedule_independent() {
    use simt::{AdvFlavor, AdvSchedule};
    let n = 50_000;
    let keys_host = keys_for(n, 23);
    let counts_for = |dev: &Device| -> Vec<(String, Vec<(&'static str, usize)>)> {
        run_with(dev, Method::Fused, &keys_host, 32)
            .iter()
            .map(|r| {
                (
                    r.label.clone(),
                    r.flight.as_ref().expect("recorder armed").kind_counts(),
                )
            })
            .collect()
    };
    let base = counts_for(&Device::sequential(K40C));
    assert!(
        base.iter().any(|(_, k)| k.iter().any(|&(_, c)| c > 0)),
        "at least one launch must record events"
    );
    let mut others = vec![Device::new(K40C)];
    for flavor in [
        AdvFlavor::Random,
        AdvFlavor::ReverseTicket,
        AdvFlavor::Straggler,
        AdvFlavor::BoundedPreempt,
    ] {
        others.push(Device::adversarial(
            K40C,
            AdvSchedule::with_flavor(0xF11647, flavor),
        ));
    }
    for dev in &others {
        assert_eq!(
            base,
            counts_for(dev),
            "kind counts must not depend on schedule"
        );
    }
}

/// Ring overflow is flagged, never silent: a tiny per-block capacity
/// truncates the stream and says so, and the analysis carries the flag.
#[test]
fn ring_overflow_is_flagged_not_silent() {
    let n = 65_536;
    let keys_host = keys_for(n, 27);
    let records = simt::with_flight_capacity(4, || {
        let dev = Device::sequential(K40C);
        with_telemetry(Telemetry::PerBlock, || {
            run_with(&dev, Method::Fused, &keys_host, 32)
        })
    });
    let sweep = records
        .iter()
        .find(|r| r.label.ends_with("/sweep"))
        .expect("fused pipeline has a sweep launch");
    let flight = sweep.flight.as_ref().expect("recorder armed");
    assert!(
        flight.truncated(),
        "4-event rings must overflow in the sweep"
    );
    assert!(flight.dropped > 0);
    assert!(
        flight.events.len() <= 4 * sweep.blocks,
        "ring bound is O(capacity) per block"
    );
    let analysis = simt::flight_analyze(sweep, &K40C).expect("analysis available");
    assert!(analysis.truncated, "analysis must surface the truncation");
}

/// Tentpole acceptance, minimal form: on a chained scan (rows = 1) under
/// the sequential schedule no resolve ever spins, so the flight-derived
/// **exact** critical path equals `launch_report`'s modeled estimate
/// exactly — not just within tolerance.
#[test]
fn exact_critical_path_matches_model_on_sequential_chained_scan() {
    let n = 1 << 16;
    let vals: Vec<u32> = keys_for(n, 31).iter().map(|k| k % 911).collect();
    let dev = Device::sequential(K40C);
    let records = with_telemetry(Telemetry::PerBlock, || {
        let input = GlobalBuffer::from_slice(&vals);
        let output = GlobalBuffer::<u32>::zeroed(n);
        primitives::exclusive_scan_u32(&dev, "flight", &input, &output, n, 8);
        dev.records()
    });
    let scan = records
        .iter()
        .find(|r| r.obs.lookback_resolves > 0)
        .expect("chained scan resolves look-backs");
    let analysis = simt::flight_analyze(scan, &K40C).expect("flight + per-block retained");
    let report = launch_report(scan, &K40C).expect("per-block retained");
    assert!(analysis.tiles > 1, "multi-tile grid expected");
    assert_eq!(analysis.stall_edges, 0, "sequential: no resolve ever spins");
    assert_eq!(
        analysis.critical_path_seconds, analysis.modeled_critical_path_seconds,
        "zero stall edges: exact path must equal the model exactly"
    );
    assert_eq!(analysis.critical_path_seconds, report.critical_path_seconds);
    assert_eq!(analysis.stall_extra_seconds, 0.0);
}

/// ISSUE 8 acceptance: `paper trace`'s headline comparison — sequential
/// Fused at n = 2^20, m = 32 — agrees with the `launch_report` estimate
/// within 1%.
#[test]
fn fused_sweep_critical_path_within_one_percent_at_2_20() {
    let n = 1 << 20;
    let keys_host = keys_for(n, 33);
    let dev = Device::sequential(K40C);
    let records = with_telemetry(Telemetry::PerBlock, || {
        run_with(&dev, Method::Fused, &keys_host, 32)
    });
    let sweep = records
        .iter()
        .find(|r| r.label.ends_with("/sweep"))
        .expect("fused pipeline has a sweep launch");
    let analysis = simt::flight_analyze(sweep, &K40C).expect("flight + per-block retained");
    let report = launch_report(sweep, &K40C).expect("per-block retained");
    assert!(
        !analysis.truncated,
        "default capacity must hold a 2^20 sweep"
    );
    let delta = (analysis.critical_path_seconds - report.critical_path_seconds).abs()
        / report.critical_path_seconds;
    assert!(
        delta <= 0.01,
        "exact {} vs modeled {}: delta {delta}",
        analysis.critical_path_seconds,
        report.critical_path_seconds
    );
}
