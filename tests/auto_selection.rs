//! `Method::auto` boundary tests (ISSUE 5 satellite): for each bucket
//! count around a selection crossover, the host-convenience entry points
//! must dispatch the expected pipeline — asserted through the launch-record
//! labels the pipelines emit, not just the enum — AND produce the
//! reference permutation.

use multisplit::{
    fused_max_buckets, multisplit, multisplit_device, multisplit_kv, multisplit_kv_ref, no_values,
    with_pipeline, Method, Pipeline, RangeBuckets,
};
use simt::{Device, GlobalBuffer, K40C};

fn keys_for(_m: u32) -> Vec<u32> {
    // A full-range multiplicative hash: every bucket is populated for every
    // m under test, and 4000 elements end on a ragged tile at wpb = 8.
    (0..4000u32).map(|i| i.wrapping_mul(2654435761)).collect()
}

/// Run the auto-dispatched host multisplit and return the launch labels.
fn labels_of(kv: bool, m: u32) -> Vec<String> {
    let keys = keys_for(m);
    let bucket = RangeBuckets::new(m);
    let dev = Device::new(K40C);
    if kv {
        let values: Vec<u32> = (0..keys.len() as u32).collect();
        let (ok, ov, offs) = multisplit_kv(&dev, &keys, &values, &bucket);
        let (ek, ev, eo) = multisplit_kv_ref(&keys, Some(&values), &bucket);
        assert_eq!((ok, ov, offs), (ek, ev, eo), "kv m={m}");
    } else {
        let (out, offs) = multisplit(&dev, &keys, &bucket);
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        assert_eq!((out, offs), (ek, eo), "m={m}");
    }
    dev.records().iter().map(|r| r.label.clone()).collect()
}

fn assert_prefix(labels: &[String], prefix: &str, ctx: &str) {
    assert!(
        !labels.is_empty() && labels.iter().all(|l| l.starts_with(prefix)),
        "{ctx}: expected every launch label to start with `{prefix}`, got {labels:?}"
    );
}

#[test]
fn auto_picks_fused_up_to_32_and_fused_large_m_above() {
    for kv in [false, true] {
        // m = 32 is the last single-row bucket count → fused pipeline.
        let labels = labels_of(kv, 32);
        assert_prefix(&labels, "fused/", &format!("kv={kv} m=32"));
        assert!(
            labels.iter().any(|l| l == "fused/sweep"),
            "kv={kv}: fused pipeline must end in its sweep kernel, got {labels:?}"
        );
        // m = 33 crosses the warp width → multi-row fused large-m pipeline.
        let labels = labels_of(kv, 33);
        assert_prefix(&labels, "fused_large_m/", &format!("kv={kv} m=33"));
    }
    assert_eq!(Method::auto(32, false), Method::Fused);
    assert_eq!(Method::auto(33, false), Method::FusedLargeM);
}

#[test]
fn auto_falls_back_to_three_kernel_large_m_past_the_fused_capacity() {
    for kv in [false, true] {
        let cap = fused_max_buckets(multisplit::DEFAULT_WARPS_PER_BLOCK, kv);
        assert!(
            cap > 33,
            "fused large-m capacity should exceed the crossover"
        );
        assert_eq!(Method::auto(cap, kv), Method::FusedLargeM, "kv={kv} at cap");
        assert_eq!(
            Method::auto(cap + 1, kv),
            Method::LargeM,
            "kv={kv} past cap"
        );
        // At the exact capacity the fused sweep still fits in shared memory.
        let labels = labels_of(kv, cap);
        assert_prefix(&labels, "fused_large_m/", &format!("kv={kv} m=cap={cap}"));
        // One past it must dispatch the three-kernel large-m pipeline,
        // recognizable by its separate scan and post-scan launches.
        let labels = labels_of(kv, cap + 1);
        assert_prefix(&labels, "large/", &format!("kv={kv} m=cap+1"));
        assert!(
            labels.iter().any(|l| l == "large/post-scan"),
            "kv={kv}: three-kernel large-m must run a post-scan, got {labels:?}"
        );
    }
}

#[test]
fn explicit_onesweep_runs_its_two_kernels_and_auto_never_picks_it() {
    // Onesweep is opt-in: `auto` keeps choosing the fused pipeline (its
    // total DRAM traffic is lower), but an explicit dispatch must run
    // exactly the sweep + deferred-scatter pair and match the reference.
    for m in [2u32, 32] {
        let keys = keys_for(m);
        let bucket = RangeBuckets::new(m);
        let dev = Device::new(K40C);
        let buf = GlobalBuffer::from_slice(&keys);
        let r = multisplit_device(
            &dev,
            Method::Onesweep,
            &buf,
            no_values(),
            keys.len(),
            &bucket,
            8,
        );
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &bucket);
        assert_eq!(r.keys.to_vec(), ek, "onesweep m={m}");
        assert_eq!(r.offsets, eo, "onesweep m={m}");
        let labels: Vec<String> = dev.records().iter().map(|rec| rec.label.clone()).collect();
        assert_eq!(
            labels,
            vec!["onesweep/sweep".to_string(), "onesweep/scatter".to_string()],
            "onesweep must launch exactly its two kernels (m={m})"
        );
    }
    for kv in [false, true] {
        for m in [1u32, 8, 32] {
            assert_ne!(Method::auto(m, kv), Method::Onesweep, "kv={kv} m={m}");
        }
    }
}

#[test]
fn three_kernel_pipeline_keeps_the_papers_crossovers() {
    with_pipeline(Pipeline::ThreeKernel, || {
        // Key-only: warp-level through m = 21, block-level from m = 22.
        for (m, prefix) in [(2u32, "warp/"), (6, "warp/"), (21, "warp/"), (22, "block/")] {
            let labels = labels_of(false, m);
            assert_prefix(&labels, prefix, &format!("three-kernel m={m}"));
        }
        // Key-value crossover is earlier (m >= 16 → block-level).
        for (m, prefix) in [(5u32, "warp/"), (15, "warp/"), (16, "block/")] {
            let labels = labels_of(true, m);
            assert_prefix(&labels, prefix, &format!("three-kernel kv m={m}"));
        }
        // Above the warp width the three-kernel large-m path applies
        // regardless of pipeline pinning.
        assert_eq!(Method::auto(33, false), Method::LargeM);
        let labels = labels_of(false, 33);
        assert_prefix(&labels, "large/", "three-kernel m=33");
    });
    // Pinning restored: the default pipeline is fused again.
    assert_eq!(Method::auto(8, false), Method::Fused);
}
