//! Adversarial-schedule integration tests (ISSUE 5 tentpole).
//!
//! `Schedule::Adversarial` serializes block execution onto a single
//! cooperative token and lets a seeded policy pick which host worker runs
//! at every `device_*` access, block claim, and spin-poll iteration. These
//! tests drive the full multisplit pipelines under all four policies and
//! assert the invariants the decoupled look-back design promises:
//!
//! * **deadlock freedom** — the `Straggler` policy parks the worker that
//!   claims ticket 0 (the only tile that can publish an INCLUSIVE prefix
//!   without looking back) until every other candidate is stuck in a
//!   look-back spin, and every pipeline still terminates;
//! * **schedule independence** — outputs, launch-label sequences, counted
//!   per-launch stats, and look-back resolve counts are bit-identical to a
//!   sequential run (walk depths and spin-poll counts legitimately differ);
//! * **determinism** — the same seed replays the same execution exactly.

use multisplit::{
    multisplit_device, multisplit_kv_ref, with_telemetry, Method, RangeBuckets, Telemetry,
};
use simt::{AdvFlavor, AdvSchedule, BlockStats, Device, GlobalBuffer, K40C};

/// One run's schedule-independent fingerprint: outputs plus, per launch,
/// the label, counted stats, and look-back resolve count.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    keys: Vec<u32>,
    values: Option<Vec<u32>>,
    offsets: Vec<u32>,
    launches: Vec<(String, BlockStats, u64)>,
}

fn run_fingerprint(dev: &Device, method: Method, keys: &[u32], kv: bool, m: u32) -> Fingerprint {
    let bucket = RangeBuckets::new(m);
    let kbuf = GlobalBuffer::from_slice(keys);
    let vals: Vec<u32> = (0..keys.len() as u32).collect();
    let vbuf = GlobalBuffer::from_slice(&vals);
    let r = multisplit_device(
        dev,
        method,
        &kbuf,
        kv.then_some(&vbuf),
        keys.len(),
        &bucket,
        8,
    );
    let launches = dev
        .records()
        .iter()
        .map(|rec| {
            // The depth histogram's bucket counts are schedule-dependent,
            // but its total must equal the resolve count on every record.
            assert_eq!(
                rec.obs.depth_hist_total(),
                rec.obs.lookback_resolves,
                "{}: depth histogram does not sum to the resolve count",
                rec.label
            );
            (rec.label.clone(), rec.stats, rec.obs.lookback_resolves)
        })
        .collect();
    Fingerprint {
        keys: r.keys.to_vec(),
        values: r.values.map(|v| v.to_vec()),
        offsets: r.offsets,
        launches,
    }
}

fn gen_keys(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = msrng::SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.next_u32()).collect()
}

/// The acceptance-criteria straggler test, single look-back row: a chained
/// scan (rows = 1) where the tile-0 publisher is parked until every other
/// block sits in its look-back spin, for several sizes including a
/// many-tile grid. Termination here IS the deadlock-freedom proof: with
/// tile 0 parked, no predecessor chain can resolve to INCLUSIVE until the
/// scheduler's release condition (all candidates spinning) fires.
#[test]
fn straggler_scan_terminates_and_matches_sequential() {
    for n in [1usize << 12, 1 << 15] {
        let vals: Vec<u32> = gen_keys(n, 0xAD01).iter().map(|k| k % 1000).collect();
        let mut outputs = Vec::new();
        for dev in [
            Device::sequential(K40C),
            Device::adversarial(K40C, AdvSchedule::with_flavor(0xFEED, AdvFlavor::Straggler)),
        ] {
            let input = GlobalBuffer::from_slice(&vals);
            let output = GlobalBuffer::<u32>::zeroed(n);
            let total = primitives::exclusive_scan_u32(&dev, "adv", &input, &output, n, 8);
            let resolves: u64 = dev.records().iter().map(|r| r.obs.lookback_resolves).sum();
            outputs.push((output.to_vec(), total, resolves));
        }
        assert_eq!(
            outputs[0], outputs[1],
            "n={n}: straggler-scheduled chained scan diverges from sequential"
        );
    }
}

/// The same parking schedule against the multi-row look-back
/// (`resolve_rows`): FusedLargeM at m = 64 publishes and walks two 32-row
/// groups per tile, and the whole pipeline must still terminate with a
/// bit-identical fingerprint.
#[test]
fn straggler_multi_row_lookback_terminates_and_matches_sequential() {
    let keys = gen_keys(6000, 0xAD02);
    for kv in [false, true] {
        let seq = run_fingerprint(
            &Device::sequential(K40C),
            Method::FusedLargeM,
            &keys,
            kv,
            64,
        );
        let adv = run_fingerprint(
            &Device::adversarial(K40C, AdvSchedule::with_flavor(0xBEEF, AdvFlavor::Straggler)),
            Method::FusedLargeM,
            &keys,
            kv,
            64,
        );
        assert_eq!(seq, adv, "kv={kv}: multi-row straggler run diverges");
        let vals: Vec<u32> = (0..6000).collect();
        let (ek, ev, eo) =
            multisplit_kv_ref(&keys, kv.then_some(&vals[..]), &RangeBuckets::new(64));
        assert_eq!(adv.keys, ek, "kv={kv}");
        assert_eq!(adv.offsets, eo, "kv={kv}");
        if kv {
            assert_eq!(adv.values.as_deref(), Some(&ev[..]), "kv={kv}");
        }
    }
}

/// Onesweep chains the per-tile m-vector histograms themselves through the
/// multi-row look-back (no separate pre-scan publishes totals first), so
/// the Straggler policy parking the tile-0 publisher attacks its only
/// source of global bucket counts. Termination plus a bit-identical
/// fingerprint is the deadlock-freedom proof for the chained-histogram
/// walk, across both a single row group (m = 32) and a ragged one (m = 13).
#[test]
fn straggler_onesweep_chained_histograms_terminate_and_match_sequential() {
    let keys = gen_keys(6000, 0xAD07);
    for (kv, m) in [(false, 32u32), (true, 32), (false, 13)] {
        let seq = run_fingerprint(&Device::sequential(K40C), Method::Onesweep, &keys, kv, m);
        let adv = run_fingerprint(
            &Device::adversarial(K40C, AdvSchedule::with_flavor(0xFACE, AdvFlavor::Straggler)),
            Method::Onesweep,
            &keys,
            kv,
            m,
        );
        assert_eq!(seq, adv, "kv={kv} m={m}: straggler onesweep run diverges");
        let vals: Vec<u32> = (0..6000).collect();
        let (ek, ev, eo) = multisplit_kv_ref(&keys, kv.then_some(&vals[..]), &RangeBuckets::new(m));
        assert_eq!(adv.keys, ek, "kv={kv} m={m}");
        assert_eq!(adv.offsets, eo, "kv={kv} m={m}");
        if kv {
            assert_eq!(adv.values.as_deref(), Some(&ev[..]), "kv={kv} m={m}");
        }
    }
}

/// Every method under every adversarial flavor agrees with the sequential
/// device and the CPU reference — outputs, label sequences, counted
/// per-launch stats, and look-back resolve counts.
#[test]
fn all_methods_agree_with_sequential_under_every_flavor() {
    let keys = gen_keys(5000, 0xAD03);
    for (method, m) in [
        (Method::Direct, 13u32),
        (Method::WarpLevel, 13),
        (Method::BlockLevel, 13),
        (Method::LargeM, 64),
        (Method::Fused, 13),
        (Method::FusedLargeM, 64),
        (Method::Onesweep, 13),
    ] {
        let seq = run_fingerprint(&Device::sequential(K40C), method, &keys, false, m);
        let (ek, _, eo) = multisplit_kv_ref(&keys, None, &RangeBuckets::new(m));
        assert_eq!(seq.keys, ek, "{method:?} sequential vs reference");
        assert_eq!(seq.offsets, eo, "{method:?}");
        for flavor in AdvFlavor::ALL {
            let adv = run_fingerprint(
                &Device::adversarial(K40C, AdvSchedule::with_flavor(0x5EED_0001, flavor)),
                method,
                &keys,
                false,
                m,
            );
            assert_eq!(
                seq,
                adv,
                "{method:?} under {} diverges from sequential",
                flavor.name()
            );
        }
    }
}

/// The adversarial executor is a deterministic function of the seed: two
/// runs with the same `AdvSchedule` replay the same interleaving, down to
/// the schedule-dependent counters (spin polls, depth histograms).
#[test]
fn same_seed_replays_identically() {
    let keys = gen_keys(5000, 0xAD04);
    let dump = || {
        let dev = Device::adversarial(K40C, AdvSchedule::from_seed(0xD5EED));
        let fp = run_fingerprint(&dev, Method::Fused, &keys, true, 29);
        let nondet: Vec<(u64, [u64; 16])> = dev
            .records()
            .iter()
            .map(|r| (r.obs.spin_polls, r.obs.lookback_depth_hist))
            .collect();
        (fp, nondet)
    };
    assert_eq!(dump(), dump(), "same seed must replay bit-identically");
}

/// Different seeds pick different flavors; `from_seed` cycles through all
/// four, and each still matches the reference (spot-check of the seeded
/// constructor the fuzz harness uses).
#[test]
fn seeded_schedules_stay_correct() {
    let keys = gen_keys(3000, 0xAD05);
    let (ek, _, eo) = multisplit_kv_ref(&keys, None, &RangeBuckets::new(8));
    for seed in 0..4u64 {
        let dev = Device::adversarial(K40C, AdvSchedule::from_seed(0x1000 + seed));
        let fp = run_fingerprint(&dev, Method::WarpLevel, &keys, false, 8);
        assert_eq!(fp.keys, ek, "seed {seed}");
        assert_eq!(fp.offsets, eo, "seed {seed}");
    }
}

/// Per-block telemetry under the adversarial executor stays id-indexed
/// (block b's counters land in slot b no matter which worker ran it), so
/// sorted per-block multisets match the sequential run's.
#[test]
fn per_block_telemetry_is_schedule_independent_up_to_block_order() {
    let keys = gen_keys(6000, 0xAD06);
    let collect = |dev: Device| {
        with_telemetry(Telemetry::PerBlock, || {
            let _ = run_fingerprint(&dev, Method::BlockLevel, &keys, false, 16);
            dev.records()
                .iter()
                .map(|r| {
                    let mut pb = r.per_block.clone().expect("PerBlock telemetry on");
                    pb.sort_by_key(|s| format!("{s:?}"));
                    (r.label.clone(), pb)
                })
                .collect::<Vec<_>>()
        })
    };
    let seq = collect(Device::sequential(K40C));
    let adv = collect(Device::adversarial(
        K40C,
        AdvSchedule::with_flavor(0xAB5EED, AdvFlavor::BoundedPreempt),
    ));
    assert_eq!(seq, adv);
}

/// ISSUE 8 acceptance: a *real* livelock — tile 1's publish suppressed via
/// `TileStates::inject_publish_stall` — must terminate through the stall
/// watchdog with a structured diagnosis naming the blocked ticket, instead
/// of hanging the process. The panic payload is the watchdog's diagnosis
/// string: headline plus wait-for-graph snapshot.
#[test]
fn injected_publish_stall_trips_the_watchdog_with_a_diagnosis() {
    use simt::{lanes_from_fn, splat};
    let blocks = 8usize;
    let states = primitives::TileStates::new(blocks, 1);
    states.inject_publish_stall(1);
    let ticket = GlobalBuffer::<u32>::zeroed(1);
    let dev = Device::adversarial(
        K40C,
        AdvSchedule::with_flavor(0x57A11, AdvFlavor::Random).with_spin_budget(5_000),
    );
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dev.launch("stall/kernel", blocks, 1, |blk| {
            for w in blk.warps() {
                let t = w.device_fetch_add(&ticket, 0, 1) as usize;
                let _ = states.resolve(&w, t, splat(1));
                let _ = lanes_from_fn(|l| l); // keep lane helpers exercised
            }
        });
    }))
    .expect_err("an unpublishable predecessor must abort, not hang");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("watchdog panics carry a String diagnosis");
    assert!(
        msg.contains("stall watchdog"),
        "diagnosis must identify the watchdog: {msg}"
    );
    assert!(
        msg.contains("waiting on ticket 1"),
        "diagnosis must name the blocked ticket: {msg}"
    );
    assert!(
        msg.contains("EMPTY (never published)"),
        "diagnosis must report the last word the waiter saw: {msg}"
    );
    assert!(
        msg.contains("wait-for graph"),
        "diagnosis must include the wait-for-graph snapshot: {msg}"
    );
}

/// The same injected fault on every other flavor (and several seeds) still
/// terminates via the watchdog — no flavor's release heuristic can save a
/// predecessor that never publishes, and none may hang.
#[test]
fn injected_stall_terminates_under_every_flavor() {
    for flavor in [
        AdvFlavor::Random,
        AdvFlavor::ReverseTicket,
        AdvFlavor::Straggler,
        AdvFlavor::BoundedPreempt,
    ] {
        use simt::splat;
        let blocks = 4usize;
        let states = primitives::TileStates::new(blocks, 1);
        states.inject_publish_stall(0);
        let ticket = GlobalBuffer::<u32>::zeroed(1);
        let dev = Device::adversarial(
            K40C,
            AdvSchedule::with_flavor(0xD06, flavor).with_spin_budget(2_000),
        );
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.launch("stall/flavors", blocks, 1, |blk| {
                for w in blk.warps() {
                    let t = w.device_fetch_add(&ticket, 0, 1) as usize;
                    let _ = states.resolve(&w, t, splat(1));
                }
            });
        }))
        .expect_err("livelock must abort under every flavor");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("waiting on ticket 0"),
            "{flavor:?}: diagnosis must name ticket 0: {msg}"
        );
    }
}

// ================= cross-stream deadlock freedom (ISSUE 10) =================

/// Straggler across streams: stream 0's ticket-0 claimant is parked the
/// moment it claims its ticket, while stream 1 sits in an `Event` wait
/// that only stream 0 can satisfy. The event wait counts as "stuck
/// spinning" for the straggler release, so the parked publisher is the
/// only way forward and gets released — the session terminates with both
/// scans matching the CPU reference. Hanging here would mean the release
/// heuristic can't see cross-stream event waits.
#[test]
fn straggler_parks_one_stream_while_another_waits_on_an_event() {
    use simt::{Event, Stream};
    let n = 1usize << 12;
    let vals: Vec<u32> = gen_keys(n, 0xAD10).iter().map(|k| k % 1000).collect();
    // CPU reference: scan, then scan-of-scan.
    let scan_ref = |xs: &[u32]| -> (Vec<u32>, u32) {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0u32;
        for &x in xs {
            out.push(acc);
            acc = acc.wrapping_add(x);
        }
        (out, acc)
    };
    let (first_ref, first_total) = scan_ref(&vals);
    let (second_ref, second_total) = scan_ref(&first_ref);

    let dev = Device::adversarial(K40C, AdvSchedule::with_flavor(0xAD11, AdvFlavor::Straggler));
    let input = GlobalBuffer::from_slice(&vals);
    let mid = GlobalBuffer::<u32>::zeroed(n);
    let out = GlobalBuffer::<u32>::zeroed(n);
    let ready = Event::new();
    let totals = dev.concurrent(vec![
        Box::new(|s: &Stream| {
            let t = s.run(|| primitives::exclusive_scan_u32(&dev, "s0", &input, &mid, n, 8));
            s.record(&ready);
            t
        }),
        Box::new(|s: &Stream| {
            s.wait(&ready);
            s.run(|| primitives::exclusive_scan_u32(&dev, "s1", &mid, &out, n, 8))
        }),
    ]);
    assert_eq!(totals, vec![first_total, second_total]);
    assert_eq!(mid.to_vec(), first_ref, "stream 0 scan diverges");
    assert_eq!(out.to_vec(), second_ref, "stream 1 scan-of-scan diverges");
}

/// The negative case: a stream waits on an event nobody ever records.
/// The stall watchdog must abort the session (not hang) with a dump that
/// names the blocked **stream** and the worker's ticket state, plus the
/// wait-for-graph snapshot with per-stream attribution.
#[test]
fn unrecorded_event_wait_trips_watchdog_naming_the_stream() {
    use simt::{Event, Stream};
    let dev = Device::adversarial(
        K40C,
        AdvSchedule::with_flavor(0xAD12, AdvFlavor::Random).with_spin_budget(2_000),
    );
    let never = Event::new();
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dev.concurrent(vec![
            Box::new(|s: &Stream| {
                s.run(|| {
                    dev.launch("orphan/work", 2, 1, |_blk| {});
                })
            }),
            Box::new(|s: &Stream| {
                s.wait(&never);
            }),
        ]);
    }))
    .expect_err("an event nobody records must abort via the watchdog, not hang");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("watchdog panics carry a String diagnosis");
    assert!(
        msg.contains("event wait stall watchdog"),
        "diagnosis must identify the event-wait watchdog: {msg}"
    );
    assert!(
        msg.contains("stream 1"),
        "diagnosis must name the blocked stream: {msg}"
    );
    assert!(
        msg.contains("waiting on an event that was never recorded"),
        "diagnosis must say what the worker is stuck on: {msg}"
    );
    assert!(
        msg.contains("wait-for graph"),
        "diagnosis must include the wait-for-graph snapshot: {msg}"
    );
    assert!(
        msg.contains("ticket"),
        "diagnosis must report the worker's ticket state: {msg}"
    );
}

/// Every adversarial flavor drives the event-ordered two-stream scan
/// pipeline to the same outputs (deadlock freedom + schedule
/// independence for the cross-stream wait path, not just Straggler).
#[test]
fn event_ordered_streams_terminate_under_every_flavor() {
    use simt::{Event, Stream};
    let n = 1usize << 10;
    let vals: Vec<u32> = gen_keys(n, 0xAD13).iter().map(|k| k % 100).collect();
    let mut expected = None;
    for flavor in AdvFlavor::ALL {
        let dev = Device::adversarial(K40C, AdvSchedule::with_flavor(0xAD14, flavor));
        let input = GlobalBuffer::from_slice(&vals);
        let mid = GlobalBuffer::<u32>::zeroed(n);
        let out = GlobalBuffer::<u32>::zeroed(n);
        let ready = Event::new();
        let totals = dev.concurrent(vec![
            Box::new(|s: &Stream| {
                let t = s.run(|| primitives::exclusive_scan_u32(&dev, "f0", &input, &mid, n, 8));
                s.record(&ready);
                t
            }),
            Box::new(|s: &Stream| {
                s.wait(&ready);
                s.run(|| primitives::exclusive_scan_u32(&dev, "f1", &mid, &out, n, 8))
            }),
        ]);
        let got = (totals, mid.to_vec(), out.to_vec());
        match &expected {
            None => expected = Some(got),
            Some(e) => assert_eq!(e, &got, "{}: event-ordered run diverges", flavor.name()),
        }
    }
}
