//! Stream-runtime integration tests (ISSUE 10 tentpole).
//!
//! `Device::stream` / `Device::concurrent` give one device independent
//! launch queues whose grids overlap in the performance model, with
//! [`Event`] record/wait edges as the only cross-stream ordering
//! primitive. These tests drive real multisplit pipelines across streams
//! and assert the contract:
//!
//! * **overlap** — two independent multisplit runs on separate streams
//!   have a modeled makespan strictly below the serialized sum, while
//!   the outputs stay bit-identical to running them one after another;
//! * **schedule independence** — the same two-stream workload produces
//!   identical outputs and per-stream launch logs under the sequential,
//!   parallel, and all four adversarial session executors;
//! * **race-detector precision** — a cross-stream same-buffer hazard
//!   panics naming the exact `(stream, launch, block)` on both sides,
//!   while disjoint-buffer overlap, same-stream pipelines, and
//!   event-ordered hand-offs stay silent (the per-launch-epoch scheme
//!   this replaces had no notion of concurrency: it would either miss
//!   these races entirely or need a blanket cross-epoch rule that flags
//!   every legitimate overlap).

use multisplit::{multisplit_device, multisplit_kv_ref, Method, RangeBuckets};
use simt::{
    lanes_from_fn, splat, AdvFlavor, AdvSchedule, BlockStats, Device, Event, GlobalBuffer, Stream,
    FULL_MASK, HOST_STREAM, K40C,
};

fn gen_keys(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = msrng::SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.next_u32()).collect()
}

/// Run one key-only multisplit on the calling thread's current stream
/// context and return `(keys, offsets)`.
fn run_ms(dev: &Device, keys: &[u32], m: u32) -> (Vec<u32>, Vec<u32>) {
    let buf = GlobalBuffer::from_slice(keys);
    let r = multisplit_device(
        dev,
        Method::Fused,
        &buf,
        multisplit::no_values(),
        keys.len(),
        &RangeBuckets::new(m),
        8,
    );
    (r.keys.to_vec(), r.offsets)
}

/// Deterministic per-stream view of the launch log: records sorted by
/// `(stream, stream_seq)` — push order across streams is not stable.
fn stream_log(dev: &Device) -> Vec<(u32, u32, String, BlockStats, u64)> {
    let mut log: Vec<_> = dev
        .records()
        .iter()
        .map(|r| {
            (
                r.stream,
                r.stream_seq,
                r.label.clone(),
                r.stats,
                r.obs.lookback_resolves,
            )
        })
        .collect();
    log.sort_by_key(|e| (e.0, e.1));
    log
}

/// Tentpole acceptance: two independent multisplit launches on separate
/// streams of one device overlap — modeled makespan strictly less than
/// the serialized sum — and the outputs are bit-identical to sequential
/// execution.
#[test]
fn two_streams_overlap_and_match_serialized_outputs() {
    let keys_a = gen_keys(4096, 0x10A);
    let keys_b = gen_keys(4096, 0x10B);

    // Serialized reference: same work, one launch after another.
    let seq = Device::sequential(K40C);
    let ref_a = run_ms(&seq, &keys_a, 13);
    let ref_b = run_ms(&seq, &keys_b, 13);
    let serialized = seq.total_seconds();
    assert!(
        (seq.makespan() - serialized).abs() < 1e-15,
        "a device that never used streams overlaps nothing"
    );

    // The same two pipelines as concurrent stream tasks.
    let dev = Device::new(K40C);
    let results = dev.concurrent(vec![
        Box::new(|s: &Stream| s.run(|| run_ms(&dev, &keys_a, 13))),
        Box::new(|s: &Stream| s.run(|| run_ms(&dev, &keys_b, 13))),
    ]);
    assert_eq!(results[0], ref_a, "stream 0 output diverges from serial");
    assert_eq!(results[1], ref_b, "stream 1 output diverges from serial");

    let total = dev.total_seconds();
    assert!(
        (total - serialized).abs() < 1e-12,
        "same launches, same serialized sum: {total} vs {serialized}"
    );
    let makespan = dev.makespan();
    assert!(
        makespan < total * 0.999,
        "two independent streams must overlap: makespan {makespan} vs serialized {total}"
    );
    let util = dev.utilization();
    assert!(
        util > 0.0 && util <= 1.0 + 1e-9,
        "utilization is busy/makespan in (0, 1]: {util}"
    );

    // Every launch carries its stream attribution.
    let log = stream_log(&dev);
    assert!(log.iter().all(|e| e.0 == 0 || e.0 == 1));
    for stream in [0, 1] {
        let seqs: Vec<u32> = log.iter().filter(|e| e.0 == stream).map(|e| e.1).collect();
        let expect: Vec<u32> = (0..seqs.len() as u32).collect();
        assert_eq!(seqs, expect, "stream {stream} launch clock is FIFO-dense");
    }
}

/// The same two-stream workload under every session executor — outputs
/// and per-stream launch logs bit-identical to the sequential session
/// (which runs stream 0's task to completion before stream 1's).
#[test]
fn concurrent_streams_agree_across_all_schedulers() {
    let keys_a = gen_keys(3000, 0x20A);
    let keys_b = gen_keys(3000, 0x20B);
    let run = |dev: Device| {
        let results = dev.concurrent(vec![
            Box::new(|s: &Stream| s.run(|| run_ms(&dev, &keys_a, 29))),
            Box::new(|s: &Stream| s.run(|| run_ms(&dev, &keys_b, 29))),
        ]);
        (results, stream_log(&dev))
    };
    let reference = run(Device::sequential(K40C));
    let (ek_a, _, eo_a) = multisplit_kv_ref(&keys_a, None, &RangeBuckets::new(29));
    assert_eq!(reference.0[0].0, ek_a, "stream 0 vs CPU reference");
    assert_eq!(reference.0[0].1, eo_a);

    let mut devices = vec![Device::new(K40C)];
    for flavor in AdvFlavor::ALL {
        devices.push(Device::adversarial(
            K40C,
            AdvSchedule::with_flavor(0x5EED_0010, flavor),
        ));
    }
    for dev in devices {
        let name = format!("{:?}", dev.schedule());
        let got = run(dev);
        assert_eq!(got, reference, "{name}: two-stream run diverges");
    }
}

/// Host-lane launches (no streams anywhere) keep the exact pre-stream
/// semantics: records carry `HOST_STREAM`, and the makespan model
/// serializes them so `makespan == total_seconds` to the bit.
#[test]
fn host_lane_devices_never_overlap() {
    let keys = gen_keys(2000, 0x30A);
    let dev = Device::new(K40C);
    let _ = run_ms(&dev, &keys, 13);
    let _ = run_ms(&dev, &keys, 13);
    assert!(dev.records().iter().all(|r| r.stream == HOST_STREAM));
    assert!(
        (dev.makespan() - dev.total_seconds()).abs() < 1e-15,
        "host lane is FIFO: {} vs {}",
        dev.makespan(),
        dev.total_seconds()
    );
}

// ===================== race-detector precision (satellite) =====================

/// A cross-stream read of another stream's write with no event edge is a
/// race, and the versioned-clock detector reports it even though the
/// sequential session happened to serialize the two launches perfectly —
/// the *ordering metadata* (no edge) is what's checked, not the lucky
/// interleaving the executor produced.
#[test]
#[should_panic(expected = "race detector: cross-stream read-after-write hazard")]
fn cross_stream_read_after_write_panics() {
    let dev = Device::sequential(K40C);
    let buf = GlobalBuffer::<u32>::zeroed(64).tracked();
    dev.concurrent(vec![
        Box::new(|s: &Stream| {
            s.run(|| {
                dev.launch("hazard/writer", 1, 1, |blk| {
                    for w in blk.warps() {
                        w.scatter(&buf, lanes_from_fn(|l| l), splat(7), FULL_MASK);
                    }
                });
            })
        }),
        Box::new(|s: &Stream| {
            s.run(|| {
                dev.launch("hazard/reader", 1, 1, |blk| {
                    for w in blk.warps() {
                        let _ = w.gather(&buf, lanes_from_fn(|l| l), FULL_MASK);
                    }
                });
            })
        }),
    ]);
}

/// A cross-stream write over another stream's *read* (anti-dependence) is
/// equally racy: the versioned read clocks catch it.
#[test]
#[should_panic(expected = "race detector: cross-stream write-after-read hazard")]
fn cross_stream_write_after_read_panics() {
    let dev = Device::sequential(K40C);
    let buf = GlobalBuffer::<u32>::zeroed(64).tracked();
    dev.concurrent(vec![
        Box::new(|s: &Stream| {
            s.run(|| {
                dev.launch("anti/reader", 1, 1, |blk| {
                    for w in blk.warps() {
                        let _ = w.gather(&buf, lanes_from_fn(|l| l), FULL_MASK);
                    }
                });
            })
        }),
        Box::new(|s: &Stream| {
            s.run(|| {
                dev.launch("anti/writer", 1, 1, |blk| {
                    for w in blk.warps() {
                        w.scatter(&buf, lanes_from_fn(|l| l), splat(9), FULL_MASK);
                    }
                });
            })
        }),
    ]);
}

/// The hazard report names the exact `(stream, launch, block)` pair on
/// both sides — the acceptance-criteria precision requirement.
#[test]
fn hazard_report_names_stream_launch_and_block() {
    let dev = Device::sequential(K40C);
    let buf = GlobalBuffer::<u32>::zeroed(64).tracked();
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dev.concurrent(vec![
            Box::new(|s: &Stream| {
                s.run(|| {
                    dev.launch("name/writer", 1, 1, |blk| {
                        for w in blk.warps() {
                            w.scatter(&buf, lanes_from_fn(|l| l), splat(1), FULL_MASK);
                        }
                    });
                })
            }),
            Box::new(|s: &Stream| {
                s.run(|| {
                    // Second launch on stream 1 so the report's launch
                    // numbers differ between the two sides.
                    dev.launch("name/warmup", 1, 1, |_blk| {});
                    dev.launch("name/reader", 1, 1, |blk| {
                        for w in blk.warps() {
                            let _ = w.gather(&buf, lanes_from_fn(|l| l), FULL_MASK);
                        }
                    });
                })
            }),
        ]);
    }))
    .expect_err("unsynchronized cross-stream read must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("detector panics carry a String");
    assert!(
        msg.contains("read by (stream 1, launch 1, block 0)"),
        "must name the reader side exactly: {msg}"
    );
    assert!(
        msg.contains("write by (stream 0, launch 0, block 0)"),
        "must name the writer side exactly: {msg}"
    );
    assert!(
        msg.contains("Event record/wait edge"),
        "must tell the user the fix: {msg}"
    );
}

/// False-positive regression: overlapping launches on **disjoint**
/// tracked buffers must stay silent under every session executor. A
/// naive cross-epoch rule (flag any access to data marked by a different
/// in-flight epoch, the only concurrency story the per-launch-epoch
/// scheme could offer) has no way to express "these two launches were
/// never ordered *and never needed to be*"; the versioned clocks do.
#[test]
fn disjoint_buffer_overlap_is_silent_under_every_executor() {
    let mut devices = vec![Device::sequential(K40C), Device::new(K40C)];
    for flavor in AdvFlavor::ALL {
        devices.push(Device::adversarial(
            K40C,
            AdvSchedule::with_flavor(0xD15, flavor),
        ));
    }
    for dev in devices {
        let a = GlobalBuffer::<u32>::zeroed(256).tracked();
        let b = GlobalBuffer::<u32>::zeroed(256).tracked();
        let task = |buf: &GlobalBuffer<u32>, tag: u32| {
            // Write then read back the same tracked buffer across two
            // launches of one stream: cross-epoch but same stream, which
            // the detector must treat as FIFO-ordered.
            dev.launch("disjoint/write", 2, 1, |blk| {
                for w in blk.warps() {
                    let base = blk.block_id * 32;
                    w.scatter(buf, lanes_from_fn(|l| base + l), splat(tag), FULL_MASK);
                }
            });
            dev.launch("disjoint/read", 2, 1, |blk| {
                for w in blk.warps() {
                    let base = blk.block_id * 32;
                    let v = w.gather(buf, lanes_from_fn(|l| base + l), FULL_MASK);
                    assert!(v.iter().all(|&x| x == tag));
                }
            });
        };
        dev.concurrent(vec![
            Box::new(|s: &Stream| s.run(|| task(&a, 11))),
            Box::new(|s: &Stream| s.run(|| task(&b, 22))),
        ]);
    }
}

/// An event record/wait edge makes a cross-stream hand-off legal: the
/// consumer's frontier covers the producer's launch, the detector stays
/// silent, and the consumed values are the produced ones — under every
/// session executor.
#[test]
fn event_ordered_handoff_is_silent_and_correct() {
    let mut devices = vec![Device::sequential(K40C), Device::new(K40C)];
    for flavor in AdvFlavor::ALL {
        devices.push(Device::adversarial(
            K40C,
            AdvSchedule::with_flavor(0xE40, flavor),
        ));
    }
    for dev in devices {
        let buf = GlobalBuffer::<u32>::zeroed(64).tracked();
        let sum = GlobalBuffer::<u32>::zeroed(1);
        let ready = Event::new();
        dev.concurrent(vec![
            Box::new(|s: &Stream| {
                s.run(|| {
                    dev.launch("handoff/produce", 1, 1, |blk| {
                        for w in blk.warps() {
                            w.scatter(
                                &buf,
                                lanes_from_fn(|l| l),
                                lanes_from_fn(|l| l as u32 + 1),
                                FULL_MASK,
                            );
                        }
                    });
                });
                s.record(&ready);
            }),
            Box::new(|s: &Stream| {
                s.wait(&ready);
                s.run(|| {
                    dev.launch("handoff/consume", 1, 1, |blk| {
                        for w in blk.warps() {
                            let v = w.gather(&buf, lanes_from_fn(|l| l), FULL_MASK);
                            if w.warp_id == 0 {
                                sum.set(0, v.iter().sum());
                            }
                        }
                    });
                });
            }),
        ]);
        assert_eq!(
            sum.get(0),
            (1..=32).sum::<u32>(),
            "consumed what was produced"
        );
    }
}

/// Manual streams (`Device::stream`, no `concurrent` session) share one
/// session: the detector covers them too, and an event edge clears them.
#[test]
fn manual_streams_use_events_for_handoff() {
    let dev = Device::sequential(K40C);
    let s0 = dev.stream();
    let s1 = dev.stream();
    assert_eq!((s0.index(), s1.index()), (0, 1));
    let buf = GlobalBuffer::<u32>::zeroed(32).tracked();
    let ev = Event::new();
    s0.run(|| {
        dev.launch("manual/write", 1, 1, |blk| {
            for w in blk.warps() {
                w.scatter(&buf, lanes_from_fn(|l| l), splat(5), FULL_MASK);
            }
        });
    });
    s0.record(&ev);
    s1.wait(&ev);
    s1.run(|| {
        dev.launch("manual/read", 1, 1, |blk| {
            for w in blk.warps() {
                let v = w.gather(&buf, lanes_from_fn(|l| l), FULL_MASK);
                assert!(v.iter().all(|&x| x == 5));
            }
        });
    });
    // Attribution: one launch per stream, seq 0 each.
    let log = stream_log(&dev);
    assert_eq!(log.len(), 2);
    assert_eq!((log[0].0, log[0].1), (0, 0));
    assert_eq!((log[1].0, log[1].1), (1, 0));
}

/// The same manual-stream access *without* the event edge is the race the
/// detector exists for.
#[test]
#[should_panic(expected = "cross-stream read-after-write")]
fn manual_streams_without_event_edge_panic() {
    let dev = Device::sequential(K40C);
    let s0 = dev.stream();
    let s1 = dev.stream();
    let buf = GlobalBuffer::<u32>::zeroed(32).tracked();
    s0.run(|| {
        dev.launch("manual/write", 1, 1, |blk| {
            for w in blk.warps() {
                w.scatter(&buf, lanes_from_fn(|l| l), splat(5), FULL_MASK);
            }
        });
    });
    s1.run(|| {
        dev.launch("manual/read", 1, 1, |blk| {
            for w in blk.warps() {
                let _ = w.gather(&buf, lanes_from_fn(|l| l), FULL_MASK);
            }
        });
    });
}

/// Host access after the session join is ordered (the join is a full
/// barrier), and a *later kernel on the host lane* reading session data
/// is ordered too — launch boundaries outside sessions remain true sync
/// points, exactly the pre-stream semantics.
#[test]
fn post_session_host_lane_access_is_ordered() {
    let dev = Device::sequential(K40C);
    let buf = GlobalBuffer::<u32>::zeroed(32).tracked();
    dev.concurrent(vec![Box::new(|s: &Stream| {
        s.run(|| {
            dev.launch("post/write", 1, 1, |blk| {
                for w in blk.warps() {
                    w.scatter(&buf, lanes_from_fn(|l| l), splat(3), FULL_MASK);
                }
            });
        })
    })]);
    // Host read and a host-lane kernel read: both silent.
    assert_eq!(buf.get(0), 3);
    dev.launch("post/read", 1, 1, |blk| {
        for w in blk.warps() {
            let v = w.gather(&buf, lanes_from_fn(|l| l), FULL_MASK);
            assert!(v.iter().all(|&x| x == 3));
        }
    });
}
