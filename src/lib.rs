//! # multisplit-repro — umbrella crate
//!
//! Re-exports the whole workspace behind one dependency, hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). See the individual crates for the real content:
//!
//! * [`simt`] — the warp-synchronous GPU simulator substrate.
//! * [`primitives`] — device-wide scan / reduce / histogram / split.
//! * [`multisplit`] — the paper's contribution (Direct, Warp-level,
//!   Block-level, and `m > 32` multisplit).
//! * [`ms_sort`] — the multisplit-iterated LSB radix sort built on the
//!   fused pipelines.
//! * [`baselines`] — radix sort, reduced-bit sort, scan-based splits,
//!   randomized insertion.
//! * [`sssp`] — delta-stepping SSSP, the motivating application.

pub use baselines;
pub use ms_sort;
pub use multisplit;
pub use primitives;
pub use simt;
pub use sssp;

/// Convenience re-exports for the examples and quick starts.
pub mod prelude {
    pub use multisplit::{
        multisplit, multisplit_kv, BucketFn, DeltaBuckets, FnBuckets, IdentityBuckets, LsbBuckets,
        Method, PrimeComposite, RangeBuckets,
    };
    pub use simt::{Device, GTX750TI, K40C};
}
